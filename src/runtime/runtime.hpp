// The multi-tenant collective runtime: many all-reduce jobs, one optical
// ring, one simulation clock.
//
// The seed library runs a single Wrht schedule per experiment; this runtime
// is the serving layer above it.  Tenants submit jobs (participant subset +
// payload + arrival time).  On arrival a job enters the admission queue; the
// fairness policy decides who runs next and the SpectrumArbiter carves a
// disjoint wavelength band out of the shared spectrum for each admitted job.
// Each job's Wrht schedule is built against its private band width, shifted
// into place, and progressed step by step as events on ONE sim::Simulator —
// so steps of different jobs interleave in time on the shared clock, while
// the shared SpectrumMap re-checks every (span, wavelength, direction)
// reservation and treats a cross-job collision as a fatal arbitration bug.
//
// Modeling assumption: as with striping in the single-job DES, a node's
// TeraRack-style resonator bank can drive several wavelengths at once, so
// two jobs sharing a node but not a wavelength do not contend — under the
// paper's retune-every-step cost model their timing is exact.  Queueing at
// a shared node's transceiver (relevant only for the retune-tracking
// ablation) is future work; see ROADMAP.
//
// Small same-group jobs are fused by the Batcher into a single schedule
// (one set of per-step optical overheads for the whole batch), and every
// execution's schedule is proven correct with the coll:: oracle before it
// touches the ring.
//
// Step-boundary renegotiation: the paper's discrete steps give the runtime
// a natural control point — after a step's spectrum cells are released and
// before the next step claims any, an execution's band can change without
// ever producing an inconsistent reservation.  At that point the runtime
// may PREEMPT (suspend the execution, surrender its whole band to a
// higher-priority arrival under FairnessPolicy::kPriorityPreempt, resume it
// later on whatever band it regains) or RESIZE (grow into freed neighboring
// spectrum, or shrink toward the job's floor when queued tenants starve).
// Both paths rebuild the execution's remaining schedule levels against the
// new budget through core::rebuild_wrht_remainder, and every rebuilt
// remainder is re-proven with the oracle — composed with the functional
// steps already executed — before it touches the ring.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "optical/network.hpp"
#include "optical/params.hpp"
#include "runtime/admission.hpp"
#include "runtime/arbiter.hpp"
#include "runtime/batcher.hpp"
#include "runtime/job.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "wrht/builder.hpp"

namespace wrht::runtime {

struct RuntimeConfig {
  /// Nodes on the shared ring.
  std::uint32_t ring_size = 64;
  /// Optical cost model; wdm.num_wavelengths is the total spectrum budget
  /// the arbiter partitions between tenants.
  optical::OpticalParams optical{};
  FairnessPolicy policy = FairnessPolicy::kFifo;
  BatcherConfig batcher{};
  /// Wavelength request used when a JobSpec leaves requested_wavelengths 0.
  std::uint32_t default_request = 8;
  optical::FitPolicy fit_policy = optical::FitPolicy::kFirstFit;
  /// Prove every execution's schedule with the functional oracle before
  /// running it (cheap: oracle payloads are oracle_payload_len doubles).
  bool validate_with_oracle = true;
  std::size_t oracle_payload_len = 48;
  /// Step-boundary elastic resize: grow a running execution's band into
  /// adjacent freed spectrum when that shortens its remaining schedule, and
  /// shrink a band toward its jobs' floor when the shrink would unblock a
  /// starved queued job.
  bool elastic_resize = false;
};

struct RuntimeReport {
  util::Seconds makespan{0.0};
  std::uint32_t submitted = 0;
  std::uint32_t completed = 0;
  std::uint32_t rejected = 0;
  /// Executions started / executions that fused more than one job.
  std::uint32_t executions = 0;
  std::uint32_t batches = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_retunes = 0;
  /// (arc, wavelength) reservations checked against the shared spectrum
  /// map.  A cross-job conflict aborts the process, so a finished run had
  /// zero wavelength-conflict aborts by construction; this counts how many
  /// opportunities there were.
  std::uint64_t spectrum_reservations = 0;
  /// Most jobs simultaneously holding spectrum at any instant.
  std::uint32_t peak_concurrent_jobs = 0;
  /// Executions whose schedule failed the functional oracle.  Like a
  /// wavelength conflict this aborts the process, so a returned report
  /// always says 0; the field documents that the checks ran.
  std::uint32_t oracle_failures = 0;
  /// Step-boundary renegotiations: executions suspended for a
  /// higher-priority arrival, executions resumed afterwards, and band
  /// grow/shrink rebuilds applied in place.
  std::uint32_t preemptions = 0;
  std::uint32_t resumes = 0;
  std::uint32_t resizes = 0;
  util::Seconds total_turnaround{0.0};

  [[nodiscard]] util::Seconds mean_turnaround() const {
    return completed == 0 ? util::Seconds(0.0)
                          : util::Seconds(total_turnaround.value() /
                                          static_cast<double>(completed));
  }
  [[nodiscard]] std::string to_string() const;
};

class CollectiveRuntime {
 public:
  explicit CollectiveRuntime(RuntimeConfig config);

  /// Register a job.  Infeasible specs (bad participant list, or a minimum
  /// demand no grant can ever satisfy) are rejected immediately.  Must be
  /// called before run().
  JobId submit(JobSpec spec);

  /// Drive the shared clock until every submitted job has completed.
  RuntimeReport run();

  [[nodiscard]] const JobRecord& record(JobId id) const;
  [[nodiscard]] std::size_t num_jobs() const { return records_.size(); }
  /// Job ids in completion order (deterministic for a fixed submission set).
  [[nodiscard]] const std::vector<JobId>& completion_order() const {
    return completion_order_;
  }
  [[nodiscard]] const topo::RingTopology& ring() const { return ring_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] util::Seconds now() const { return simulator_.now(); }

 private:
  /// One admitted unit of work: a single job or a fused batch.  `build` is
  /// the schedule for the work still ahead (the whole job at admission, the
  /// rebuilt remainder after a renegotiation); `executed` accumulates the
  /// functional steps already run, so the composite executed + build can be
  /// re-proven with the oracle after every rebuild.
  struct Execution {
    std::vector<JobId> jobs;
    WavelengthBand band;
    /// Urgency (max over fused jobs) under kPriorityPreempt.  Starts at the
    /// lowest representable value so max-folding preserves NEGATIVE tenant
    /// priorities instead of flattening them to 0.
    std::int32_t priority = std::numeric_limits<std::int32_t>::min();
    /// Narrowest band the execution accepts (max over fused jobs' minima).
    std::uint32_t min_width = 1;
    /// Widest band the execution can exploit (growth ceiling).
    std::uint32_t useful_cap = 1;
    std::vector<topo::NodeId> participants;
    util::Bytes batch_payload;
    core::WrhtBuild build;
    std::vector<coll::Step> executed;
    std::vector<std::vector<optical::TimedTransfer>> steps;
    std::size_t next_step = 0;
    /// A queued higher-priority job asked for this band; surrender it at
    /// the next step boundary.
    bool preempt_requested = false;
    bool suspended = false;
  };

  void on_arrival(JobId id);
  void try_admit();
  void admit(const AdmissionDecision& decision);
  void run_step(const std::shared_ptr<Execution>& exec);
  void finish_execution(const std::shared_ptr<Execution>& exec);

  /// The step-boundary renegotiation point: called between two steps of
  /// `exec`, with exec's own cells released and its band still held.  May
  /// suspend the execution or swap in a rebuilt remainder on a different
  /// band.  Returns true when the execution surrendered its band HERE — the
  /// caller must not dispatch the next step then, even if a same-instant
  /// resume already restarted the execution (the resume dispatched it).
  [[nodiscard]] bool renegotiate(const std::shared_ptr<Execution>& exec);
  void suspend_execution(const std::shared_ptr<Execution>& exec);
  bool try_resume_one();
  void request_preemptions();
  [[nodiscard]] std::int32_t top_suspended_priority() const;
  void try_grow(const std::shared_ptr<Execution>& exec);
  void try_shrink(const std::shared_ptr<Execution>& exec);

  /// Rebuild exec's remaining levels for a band of `width` wavelengths.
  [[nodiscard]] std::optional<core::WrhtBuild> rebuild_remainder(
      const Execution& exec, std::uint32_t width) const;
  /// Fold the executed prefix of exec's current build into exec->executed,
  /// install `next` as the new build on `band`, re-time its steps, update
  /// the job records, and re-prove the composite with the oracle.
  void adopt_rebuilt(Execution& exec, core::WrhtBuild next,
                     const WavelengthBand& band);
  void verify_composite_or_die(const Execution& exec);
  void trace_job(sim::TraceKind kind, JobId id, const WavelengthBand& band);

  RuntimeConfig config_;
  topo::RingTopology ring_;
  sim::Simulator simulator_;
  optical::SpectrumMap spectrum_;
  optical::TransceiverBank transceivers_;
  SpectrumArbiter arbiter_;
  JobQueue queue_;
  std::vector<JobRecord> records_;
  std::vector<JobId> completion_order_;
  sim::Trace trace_;
  RuntimeReport report_;
  std::vector<std::shared_ptr<Execution>> running_execs_;
  /// Preempted executions awaiting spectrum, in suspension order.
  std::vector<std::shared_ptr<Execution>> suspended_;
  std::uint64_t next_seq_ = 0;
  std::uint32_t running_jobs_ = 0;
  bool started_ = false;
};

}  // namespace wrht::runtime
