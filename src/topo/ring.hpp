// Ring topology of N nodes connected sequentially, as in TeraRack: node i is
// physically adjacent to node (i+1) mod N.  The optical fabric consists of
// two counter-rotating waveguides; a transfer travels either clockwise
// (increasing indices) or counter-clockwise, passing through the micro-ring
// resonators of intermediate nodes without being dropped.
//
// Terminology used throughout the repo:
//  * span s   — the physical fiber span between node s and node s+1 (mod N).
//  * arc      — a contiguous run of spans traversed in one direction.
//  * distance — number of spans a transfer crosses (= hop count).
#pragma once

#include <cstdint>
#include <vector>

namespace wrht::topo {

using NodeId = std::uint32_t;
using SpanId = std::uint32_t;

enum class Direction : std::uint8_t { kClockwise = 0, kCounterClockwise = 1 };

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return d == Direction::kClockwise ? Direction::kCounterClockwise
                                    : Direction::kClockwise;
}

[[nodiscard]] const char* direction_name(Direction d);

/// A contiguous run of spans on one waveguide.  `first` is the span id at
/// which the arc begins *in traversal order*: a clockwise arc covers spans
/// first, first+1, ..., first+length-1 (mod N); a counter-clockwise arc
/// covers first, first-1, ..., first-length+1 (mod N).
struct Arc {
  Direction direction = Direction::kClockwise;
  SpanId first = 0;
  std::uint32_t length = 0;

  [[nodiscard]] bool empty() const { return length == 0; }
};

class RingTopology {
 public:
  explicit RingTopology(std::uint32_t num_nodes);

  [[nodiscard]] std::uint32_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::uint32_t num_spans() const { return num_nodes_; }

  /// Hops from src to dst travelling clockwise (0 when src == dst).
  [[nodiscard]] std::uint32_t distance_cw(NodeId src, NodeId dst) const;
  /// Hops from src to dst in the given direction.
  [[nodiscard]] std::uint32_t distance(NodeId src, NodeId dst,
                                       Direction dir) const;
  /// min over both directions.
  [[nodiscard]] std::uint32_t shortest_distance(NodeId src, NodeId dst) const;
  /// The direction realizing shortest_distance; ties broken clockwise.
  [[nodiscard]] Direction shortest_direction(NodeId src, NodeId dst) const;

  /// The arc a transfer from src to dst occupies in direction `dir`.
  /// Requires src != dst.
  [[nodiscard]] Arc arc(NodeId src, NodeId dst, Direction dir) const;

  /// Span ids covered by an arc, in traversal order.
  [[nodiscard]] std::vector<SpanId> spans(const Arc& arc) const;

  /// Whether two arcs share at least one span *on the same waveguide*.
  /// Arcs on opposite directions never conflict (separate waveguides).
  [[nodiscard]] bool arcs_conflict(const Arc& a, const Arc& b) const;

  /// Whether `span` is covered by `arc`.
  [[nodiscard]] bool arc_covers(const Arc& arc, SpanId span) const;

  /// The node reached after `hops` spans from `src` in direction `dir`.
  [[nodiscard]] NodeId advance(NodeId src, std::uint32_t hops,
                               Direction dir) const;

 private:
  void check_node(NodeId node) const;

  std::uint32_t num_nodes_;
};

}  // namespace wrht::topo
