#include "topo/graph.hpp"

#include <algorithm>
#include "util/check.hpp"
#include <queue>

namespace wrht::topo {

VertexId Graph::add_vertex(std::string label) {
  labels_.push_back(std::move(label));
  adjacency_.emplace_back();
  return static_cast<VertexId>(labels_.size() - 1);
}

EdgeId Graph::add_edge(VertexId from, VertexId to, double weight) {
  WRHT_REQUIRE(from < num_vertices() && to < num_vertices(),
               "Graph::add_edge: vertex out of range (" << from << ", " << to
                                                        << ")");
  edges_.push_back(Edge{from, to, weight});
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[from].push_back(id);
  return id;
}

EdgeId Graph::add_bidirectional_edge(VertexId a, VertexId b, double weight) {
  const EdgeId forward = add_edge(a, b, weight);
  add_edge(b, a, weight);
  return forward;
}

std::optional<std::vector<EdgeId>> Graph::shortest_path(VertexId from,
                                                        VertexId to) const {
  if (from >= num_vertices() || to >= num_vertices()) return std::nullopt;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_vertices(), kInf);
  std::vector<EdgeId> via(num_vertices(),
                          std::numeric_limits<EdgeId>::max());

  using QueueEntry = std::pair<double, VertexId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  dist[from] = 0.0;
  frontier.emplace(0.0, from);

  while (!frontier.empty()) {
    const auto [d, v] = frontier.top();
    frontier.pop();
    if (d > dist[v]) continue;
    if (v == to) break;
    for (const EdgeId eid : out_edges(v)) {
      const Edge& e = edges_[eid];
      const double nd = d + e.weight;
      // Strict improvement, or equal distance via a smaller edge id, keeps
      // the routing deterministic across runs.
      if (nd < dist[e.to] || (nd == dist[e.to] && eid < via[e.to])) {
        dist[e.to] = nd;
        via[e.to] = eid;
        frontier.emplace(nd, e.to);
      }
    }
  }

  if (dist[to] == kInf) return std::nullopt;
  std::vector<EdgeId> path;
  VertexId v = to;
  while (v != from) {
    const EdgeId eid = via[v];
    path.push_back(eid);
    v = edges_[eid].from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::size_t> Graph::hop_distance(VertexId from,
                                               VertexId to) const {
  const auto path = shortest_path(from, to);
  if (!path.has_value()) return std::nullopt;
  return path->size();
}

}  // namespace wrht::topo
