#include "topo/ring.hpp"

#include "util/check.hpp"

namespace wrht::topo {

const char* direction_name(Direction d) {
  return d == Direction::kClockwise ? "cw" : "ccw";
}

RingTopology::RingTopology(std::uint32_t num_nodes) : num_nodes_(num_nodes) {
  WRHT_REQUIRE(num_nodes >= 2,
               "RingTopology requires >= 2 nodes, got " << num_nodes);
}

void RingTopology::check_node(NodeId node) const {
  WRHT_REQUIRE(node < num_nodes_, "RingTopology: node "
                                      << node << " out of range [0,"
                                      << num_nodes_ << ")");
}

std::uint32_t RingTopology::distance_cw(NodeId src, NodeId dst) const {
  check_node(src);
  check_node(dst);
  return (dst + num_nodes_ - src) % num_nodes_;
}

std::uint32_t RingTopology::distance(NodeId src, NodeId dst,
                                     Direction dir) const {
  return dir == Direction::kClockwise ? distance_cw(src, dst)
                                      : distance_cw(dst, src);
}

std::uint32_t RingTopology::shortest_distance(NodeId src, NodeId dst) const {
  const std::uint32_t cw = distance_cw(src, dst);
  return cw <= num_nodes_ - cw ? cw : num_nodes_ - cw;
}

Direction RingTopology::shortest_direction(NodeId src, NodeId dst) const {
  const std::uint32_t cw = distance_cw(src, dst);
  return cw <= num_nodes_ - cw ? Direction::kClockwise
                               : Direction::kCounterClockwise;
}

Arc RingTopology::arc(NodeId src, NodeId dst, Direction dir) const {
  check_node(src);
  check_node(dst);
  WRHT_REQUIRE(src != dst, "RingTopology::arc: src == dst (" << src << ")");
  const std::uint32_t length = distance(src, dst, dir);
  // Clockwise: the first span leaving src is span `src` (src -> src+1).
  // Counter-clockwise: the first span leaving src is span `src-1`
  // (src -> src-1), traversed in reverse orientation.
  const SpanId first = dir == Direction::kClockwise
                           ? src
                           : (src + num_nodes_ - 1) % num_nodes_;
  return Arc{dir, first, length};
}

std::vector<SpanId> RingTopology::spans(const Arc& a) const {
  std::vector<SpanId> out;
  out.reserve(a.length);
  SpanId span = a.first;
  for (std::uint32_t i = 0; i < a.length; ++i) {
    out.push_back(span);
    span = a.direction == Direction::kClockwise
               ? (span + 1) % num_nodes_
               : (span + num_nodes_ - 1) % num_nodes_;
  }
  return out;
}

bool RingTopology::arc_covers(const Arc& a, SpanId span) const {
  if (a.length == 0) return false;
  if (a.length >= num_nodes_) return true;
  // Normalize the arc to an increasing circular interval of spans.
  const std::uint32_t begin =
      a.direction == Direction::kClockwise
          ? a.first
          : (a.first + num_nodes_ + 1 - a.length) % num_nodes_;
  const std::uint32_t offset = (span + num_nodes_ - begin) % num_nodes_;
  return offset < a.length;
}

bool RingTopology::arcs_conflict(const Arc& a, const Arc& b) const {
  if (a.direction != b.direction) return false;
  if (a.empty() || b.empty()) return false;
  if (a.length >= num_nodes_ || b.length >= num_nodes_) return true;
  // Two circular intervals intersect iff either contains the other's start.
  const auto begin_of = [&](const Arc& x) -> std::uint32_t {
    return x.direction == Direction::kClockwise
               ? x.first
               : (x.first + num_nodes_ + 1 - x.length) % num_nodes_;
  };
  return arc_covers(a, begin_of(b)) || arc_covers(b, begin_of(a));
}

NodeId RingTopology::advance(NodeId src, std::uint32_t hops,
                             Direction dir) const {
  check_node(src);
  const std::uint32_t h = hops % num_nodes_;
  return dir == Direction::kClockwise
             ? (src + h) % num_nodes_
             : (src + num_nodes_ - h) % num_nodes_;
}

}  // namespace wrht::topo
