// Generic directed graph with weighted edges and shortest-path routing.
// The electrical network builders (star/switch, ring, fat-tree) produce one
// of these; the flow simulator routes over its edge ids.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace wrht::topo {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

struct Edge {
  VertexId from = 0;
  VertexId to = 0;
  double weight = 1.0;
};

class Graph {
 public:
  VertexId add_vertex(std::string label = {});
  /// Adds a single directed edge.  Returns its id.
  EdgeId add_edge(VertexId from, VertexId to, double weight = 1.0);
  /// Adds both directions; returns the id of the forward edge (the backward
  /// edge id is forward+1).
  EdgeId add_bidirectional_edge(VertexId a, VertexId b, double weight = 1.0);

  [[nodiscard]] std::size_t num_vertices() const { return labels_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const Edge& edge(EdgeId id) const { return edges_[id]; }
  [[nodiscard]] const std::string& label(VertexId v) const {
    return labels_[v];
  }
  [[nodiscard]] const std::vector<EdgeId>& out_edges(VertexId v) const {
    return adjacency_[v];
  }

  /// Dijkstra shortest path by edge weight.  Returns the edge ids along the
  /// path from `from` to `to`, or nullopt if unreachable.  Deterministic:
  /// ties are broken by smaller edge id.
  [[nodiscard]] std::optional<std::vector<EdgeId>> shortest_path(
      VertexId from, VertexId to) const;

  /// Hop count of the shortest path, or nullopt if unreachable.
  [[nodiscard]] std::optional<std::size_t> hop_distance(VertexId from,
                                                        VertexId to) const;

 private:
  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace wrht::topo
