#include "dnn/model.hpp"

#include "util/check.hpp"

namespace wrht::dnn {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConvolution:
      return "conv";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kNormalization:
      return "norm";
    case LayerKind::kPooling:
      return "pool";
    case LayerKind::kInception:
      return "inception";
    case LayerKind::kBlock:
      return "block";
  }
  return "?";
}

std::uint32_t dtype_bytes(DType dtype) {
  switch (dtype) {
    case DType::kF64:
      return 8;
    case DType::kF32:
      return 4;
    case DType::kF16:
    case DType::kBF16:
      return 2;
  }
  return 4;
}

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF64:
      return "f64";
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kBF16:
      return "bf16";
  }
  return "?";
}

Model::Model(std::string name, std::uint64_t declared_params)
    : name_(std::move(name)), declared_params_(declared_params) {
  WRHT_REQUIRE(declared_params_ > 0,
               "Model '" << name_ << "': declared params must be positive");
}

void Model::add_layer(Layer layer) { layers_.push_back(std::move(layer)); }

std::uint64_t Model::table_params() const {
  std::uint64_t sum = 0;
  for (const Layer& layer : layers_) sum += layer.params;
  return sum;
}

util::Bytes Model::gradient_bytes(DType dtype) const {
  return util::Bytes(declared_params_ * dtype_bytes(dtype));
}

}  // namespace wrht::dnn
