// Gradient sizing and bucketing.
//
// DDP-style training fuses per-layer gradients into fixed-capacity buckets,
// filled in reverse layer order (gradients become ready back-to-front during
// backprop).  The bucket list is what the overlap-aware training model and
// the layer-wise all-reduce examples consume.
#pragma once

#include <cstdint>
#include <vector>

#include "dnn/model.hpp"
#include "util/units.hpp"

namespace wrht::dnn {

struct Bucket {
  std::vector<std::size_t> layer_indices;  // into Model::layers()
  util::Bytes bytes;
};

struct BucketingOptions {
  util::Bytes capacity = util::mebibytes(25);
  DType dtype = DType::kF32;
};

/// Greedy reverse-order bucketing: walk layers back-to-front, close a bucket
/// when adding the next layer would exceed capacity (a single oversized
/// layer gets a bucket of its own).  Never returns an empty bucket.
[[nodiscard]] std::vector<Bucket> bucketize(const Model& model,
                                            const BucketingOptions& options);

/// Gradient bytes of one layer at the given precision.
[[nodiscard]] util::Bytes layer_gradient_bytes(const Layer& layer, DType dtype);

/// Sum of all bucket sizes == table_params * dtype size.
[[nodiscard]] util::Bytes total_bucket_bytes(const std::vector<Bucket>& buckets);

}  // namespace wrht::dnn
