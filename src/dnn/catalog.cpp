#include "dnn/catalog.hpp"

#include <utility>
#include <vector>

namespace wrht::dnn {
namespace {

// Parameter count of a conv layer with bias: (kh*kw*cin + 1) * cout.
constexpr std::uint64_t conv(std::uint64_t kh, std::uint64_t kw,
                             std::uint64_t cin, std::uint64_t cout) {
  return (kh * kw * cin + 1) * cout;
}
// Conv without bias (ResNet convention: BN provides the affine terms).
constexpr std::uint64_t conv_nb(std::uint64_t kh, std::uint64_t kw,
                                std::uint64_t cin, std::uint64_t cout) {
  return kh * kw * cin * cout;
}
// BatchNorm learnable parameters (gamma, beta).
constexpr std::uint64_t bn(std::uint64_t channels) { return 2 * channels; }
// Fully connected with bias.
constexpr std::uint64_t fc(std::uint64_t in, std::uint64_t out) {
  return (in + 1) * out;
}

}  // namespace

Model alexnet() {
  Model model("AlexNet", 62'300'000);  // paper: "62.3M parameters"
  model.add_layer({"conv1", LayerKind::kConvolution, conv(11, 11, 3, 96)});
  model.add_layer({"conv2", LayerKind::kConvolution, conv(5, 5, 96, 256)});
  model.add_layer({"conv3", LayerKind::kConvolution, conv(3, 3, 256, 384)});
  model.add_layer({"conv4", LayerKind::kConvolution, conv(3, 3, 384, 384)});
  model.add_layer({"conv5", LayerKind::kConvolution, conv(3, 3, 384, 256)});
  model.add_layer({"fc6", LayerKind::kFullyConnected, fc(6 * 6 * 256, 4096)});
  model.add_layer({"fc7", LayerKind::kFullyConnected, fc(4096, 4096)});
  model.add_layer({"fc8", LayerKind::kFullyConnected, fc(4096, 1000)});
  return model;
}

namespace {

// Shared VGG builder: `extra_convs` > 0 adds the fourth conv in stages
// 3/4/5 (turning VGG16 into VGG19).
Model make_vgg(const char* name, std::uint64_t declared, bool deep) {
  Model model(name, declared);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cfg = {
      {3, 64},   {64, 64},   {64, 128},  {128, 128},
      {128, 256}, {256, 256}, {256, 256},
  };
  if (deep) cfg.emplace_back(256, 256);
  cfg.insert(cfg.end(), {{256, 512}, {512, 512}, {512, 512}});
  if (deep) cfg.emplace_back(512, 512);
  cfg.insert(cfg.end(), {{512, 512}, {512, 512}, {512, 512}});
  if (deep) cfg.emplace_back(512, 512);

  int index = 1;
  for (const auto& [cin, cout] : cfg) {
    model.add_layer({"conv" + std::to_string(index++),
                     LayerKind::kConvolution, conv(3, 3, cin, cout)});
  }
  model.add_layer({"fc" + std::to_string(index++),
                   LayerKind::kFullyConnected, fc(7 * 7 * 512, 4096)});
  model.add_layer({"fc" + std::to_string(index++),
                   LayerKind::kFullyConnected, fc(4096, 4096)});
  model.add_layer({"fc" + std::to_string(index),
                   LayerKind::kFullyConnected, fc(4096, 1000)});
  return model;
}

// Shared bottleneck-ResNet builder (ResNet-50/101/152 differ only in the
// per-stage block counts).
Model make_resnet(const char* name, std::uint64_t declared,
                  const int (&blocks)[4]) {
  Model model(name, declared);
  model.add_layer({"conv1", LayerKind::kConvolution,
                   conv_nb(7, 7, 3, 64) + bn(64)});

  // Bottleneck block: 1x1 (in->mid) + 3x3 (mid->mid) + 1x1 (mid->out), each
  // followed by BN; the first block of each stage adds a 1x1 projection on
  // the shortcut.
  const auto bottleneck = [](std::uint64_t in, std::uint64_t mid,
                             std::uint64_t out, bool downsample) {
    std::uint64_t p = conv_nb(1, 1, in, mid) + bn(mid) +
                      conv_nb(3, 3, mid, mid) + bn(mid) +
                      conv_nb(1, 1, mid, out) + bn(out);
    if (downsample) p += conv_nb(1, 1, in, out) + bn(out);
    return p;
  };

  const std::uint64_t mids[4] = {64, 128, 256, 512};
  std::uint64_t in = 64;
  for (int stage = 0; stage < 4; ++stage) {
    const std::uint64_t mid = mids[stage];
    const std::uint64_t out = mid * 4;
    for (int b = 0; b < blocks[stage]; ++b) {
      model.add_layer({"layer" + std::to_string(stage + 1) + ".block" +
                           std::to_string(b),
                       LayerKind::kBlock, bottleneck(in, mid, out, b == 0)});
      in = out;
    }
  }
  model.add_layer({"fc", LayerKind::kFullyConnected, fc(2048, 1000)});
  return model;
}

}  // namespace

Model vgg16() {
  return make_vgg("VGG16", 138'000'000, /*deep=*/false);  // paper: "138M"
}

Model vgg19() {
  // declared == table: 143,667,240 (torchvision).
  return make_vgg("VGG19", 143'667'240, /*deep=*/true);
}

Model resnet50() {
  return make_resnet("ResNet50", 25'000'000, {3, 4, 6, 3});  // paper: "25M"
}

Model resnet101() {
  return make_resnet("ResNet101", 44'549'160, {3, 4, 23, 3});
}

Model resnet152() {
  return make_resnet("ResNet152", 60'192'808, {3, 8, 36, 3});
}

Model googlenet() {
  Model model("GoogLeNet", 6'797'700);  // paper: "6.7977M parameters"
  model.add_layer({"conv1", LayerKind::kConvolution, conv(7, 7, 3, 64)});
  model.add_layer({"conv2_reduce", LayerKind::kConvolution,
                   conv(1, 1, 64, 64)});
  model.add_layer({"conv2", LayerKind::kConvolution, conv(3, 3, 64, 192)});

  // Inception module: four parallel branches (1x1; 1x1->3x3; 1x1->5x5;
  // pool->1x1 projection).  Channel table from Szegedy et al., Table 1.
  const auto inception = [](std::uint64_t in, std::uint64_t c1,
                            std::uint64_t r3, std::uint64_t c3,
                            std::uint64_t r5, std::uint64_t c5,
                            std::uint64_t pp) {
    return conv(1, 1, in, c1) + conv(1, 1, in, r3) + conv(3, 3, r3, c3) +
           conv(1, 1, in, r5) + conv(5, 5, r5, c5) + conv(1, 1, in, pp);
  };

  struct Module {
    const char* name;
    std::uint64_t in, c1, r3, c3, r5, c5, pp;
  };
  const Module modules[] = {
      {"inception3a", 192, 64, 96, 128, 16, 32, 32},
      {"inception3b", 256, 128, 128, 192, 32, 96, 64},
      {"inception4a", 480, 192, 96, 208, 16, 48, 64},
      {"inception4b", 512, 160, 112, 224, 24, 64, 64},
      {"inception4c", 512, 128, 128, 256, 24, 64, 64},
      {"inception4d", 512, 112, 144, 288, 32, 64, 64},
      {"inception4e", 528, 256, 160, 320, 32, 128, 128},
      {"inception5a", 832, 256, 160, 320, 32, 128, 128},
      {"inception5b", 832, 384, 192, 384, 48, 128, 128},
  };
  for (const Module& mod : modules) {
    model.add_layer({mod.name, LayerKind::kInception,
                     inception(mod.in, mod.c1, mod.r3, mod.c3, mod.r5, mod.c5,
                               mod.pp)});
  }
  model.add_layer({"fc", LayerKind::kFullyConnected, fc(1024, 1000)});
  return model;
}

std::vector<Model> paper_models() {
  std::vector<Model> models;
  models.push_back(alexnet());
  models.push_back(vgg16());
  models.push_back(resnet50());
  models.push_back(googlenet());
  return models;
}

std::vector<Model> all_models() {
  std::vector<Model> models = paper_models();
  models.push_back(vgg19());
  models.push_back(resnet101());
  models.push_back(resnet152());
  return models;
}

}  // namespace wrht::dnn
