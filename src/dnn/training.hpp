// Training-iteration timeline model with compute/communication overlap.
//
// One data-parallel iteration: forward pass, then backward pass during which
// gradient buckets become ready back-to-front; each ready bucket is
// all-reduced.  Communication of bucket k can start only when (a) the bucket
// is ready and (b) the previous all-reduce finished (collectives serialize
// on the network).  The iteration ends when the last all-reduce completes.
//
// The model takes an abstract per-bucket all-reduce time function, so the
// same timeline logic runs over the optical Wrht executor, the electrical
// flow simulator, or an analytic cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dnn/gradient.hpp"
#include "dnn/model.hpp"
#include "util/units.hpp"

namespace wrht::dnn {

struct TrainingParams {
  util::Seconds forward_time = util::milliseconds(40);
  util::Seconds backward_time = util::milliseconds(80);
  BucketingOptions bucketing{};
  /// When false, all communication happens after the backward pass
  /// (no overlap; one all-reduce over the full gradient).
  bool overlap = true;
};

/// Maps a gradient payload size to the all-reduce completion time.
using AllReduceTimeFn = std::function<util::Seconds(util::Bytes)>;

struct IterationTimeline {
  util::Seconds compute_time;        // forward + backward
  util::Seconds total_time;          // end of last all-reduce
  util::Seconds exposed_comm_time;   // total - compute (>= 0)
  std::vector<util::Seconds> bucket_ready;   // when each bucket was ready
  std::vector<util::Seconds> bucket_done;    // when its all-reduce finished
  std::size_t num_buckets = 0;
};

/// Simulate one iteration.  Bucket readiness is spread across the backward
/// pass proportionally to the parameter mass *behind* each bucket (layers
/// produce gradients back-to-front at a uniform params/second rate).
[[nodiscard]] IterationTimeline simulate_iteration(
    const Model& model, const TrainingParams& params,
    const AllReduceTimeFn& allreduce_time);

/// Communication-to-total ratio of a timeline (the paper's motivation cites
/// 50-90% at scale).
[[nodiscard]] double comm_fraction(const IterationTimeline& timeline);

}  // namespace wrht::dnn
