// Layer-level DNN model descriptions.
//
// Distributed data-parallel training only exposes one property of the model
// to the communication layer: the per-layer gradient sizes.  A Model is a
// list of layers with parameter counts; the catalog (catalog.hpp) provides
// the four networks the paper evaluates with parameter tables that sum to
// the published totals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace wrht::dnn {

enum class LayerKind : std::uint8_t {
  kConvolution,
  kFullyConnected,
  kNormalization,
  kPooling,     // no parameters; kept so layer indices match the paper nets
  kInception,   // composite (GoogLeNet); params aggregated over branches
  kBlock,       // composite (ResNet bottleneck)
};

[[nodiscard]] const char* layer_kind_name(LayerKind kind);

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConvolution;
  std::uint64_t params = 0;
};

enum class DType : std::uint8_t { kF64, kF32, kF16, kBF16 };

[[nodiscard]] std::uint32_t dtype_bytes(DType dtype);
[[nodiscard]] const char* dtype_name(DType dtype);

class Model {
 public:
  Model(std::string name, std::uint64_t declared_params);

  void add_layer(Layer layer);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  /// Sum of the layer table.
  [[nodiscard]] std::uint64_t table_params() const;

  /// The parameter count the paper states for this model (used by the
  /// Figure-2 benches so gradient sizes match the paper exactly).
  [[nodiscard]] std::uint64_t declared_params() const {
    return declared_params_;
  }

  /// Gradient bytes for one replica at the given precision, using the
  /// declared parameter count.
  [[nodiscard]] util::Bytes gradient_bytes(DType dtype = DType::kF32) const;

 private:
  std::string name_;
  std::uint64_t declared_params_;
  std::vector<Layer> layers_;
};

}  // namespace wrht::dnn
