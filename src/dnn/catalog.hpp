// The four ImageNet networks the paper evaluates (Figure 2), with
// layer-level parameter tables.
//
//   AlexNet    declared 62.3 M  (table: 62,378,344 — the original
//              Krizhevsky architecture counted with biases)
//   VGG16      declared 138 M   (table: 138,357,544 — exact)
//   ResNet50   declared 25 M    (table: 25,557,032 — conv+BN+fc, exact)
//   GoogLeNet  declared 6.7977 M (table: original Inception-v1 with biases,
//              no auxiliary heads; within ~3% of the declared figure)
//
// `declared_params()` returns the paper's number (what the Figure-2 benches
// transfer); `table_params()` sums the layer table (what layer-wise
// bucketing uses).  Tests pin both.
#pragma once

#include <vector>

#include "dnn/model.hpp"

namespace wrht::dnn {

[[nodiscard]] Model alexnet();
[[nodiscard]] Model vgg16();
[[nodiscard]] Model resnet50();
[[nodiscard]] Model googlenet();

/// Beyond the paper's four: deeper variants with published parameter
/// counts, for scaling studies (declared == table for these).
[[nodiscard]] Model vgg19();      // 143,667,240
[[nodiscard]] Model resnet101();  // 44,549,160
[[nodiscard]] Model resnet152();  // 60,192,808

/// The Figure-2 model set in the paper's order.
[[nodiscard]] std::vector<Model> paper_models();

/// Everything in the catalog (paper models + extras).
[[nodiscard]] std::vector<Model> all_models();

}  // namespace wrht::dnn
