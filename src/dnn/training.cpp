#include "dnn/training.hpp"

#include <algorithm>

namespace wrht::dnn {

IterationTimeline simulate_iteration(const Model& model,
                                     const TrainingParams& params,
                                     const AllReduceTimeFn& allreduce_time) {
  IterationTimeline timeline;
  timeline.compute_time = params.forward_time + params.backward_time;

  if (!params.overlap) {
    const util::Seconds comm =
        allreduce_time(model.gradient_bytes(params.bucketing.dtype));
    timeline.num_buckets = 1;
    timeline.bucket_ready = {timeline.compute_time};
    timeline.bucket_done = {timeline.compute_time + comm};
    timeline.total_time = timeline.bucket_done.back();
    timeline.exposed_comm_time = comm;
    return timeline;
  }

  const std::vector<Bucket> buckets = bucketize(model, params.bucketing);
  timeline.num_buckets = buckets.size();

  // Backward progress is proportional to parameter mass processed; bucket k
  // (built back-to-front) is ready once the cumulative mass through it has
  // been backpropagated.
  const double total_params = static_cast<double>(model.table_params());
  const double bwd = params.backward_time.value();
  const util::Seconds bwd_start = params.forward_time;

  double cumulative = 0.0;
  util::Seconds network_free = util::Seconds(0.0);
  for (const Bucket& bucket : buckets) {
    double bucket_params = 0.0;
    for (const std::size_t layer : bucket.layer_indices) {
      bucket_params += static_cast<double>(model.layers()[layer].params);
    }
    cumulative += bucket_params;
    const util::Seconds ready =
        bwd_start +
        util::Seconds(total_params > 0.0 ? bwd * cumulative / total_params
                                         : bwd);
    const util::Seconds start = std::max(ready, network_free);
    const util::Seconds done = start + allreduce_time(bucket.bytes);
    network_free = done;
    timeline.bucket_ready.push_back(ready);
    timeline.bucket_done.push_back(done);
  }

  timeline.total_time =
      std::max(timeline.compute_time,
               timeline.bucket_done.empty() ? timeline.compute_time
                                            : timeline.bucket_done.back());
  timeline.exposed_comm_time = timeline.total_time - timeline.compute_time;
  return timeline;
}

double comm_fraction(const IterationTimeline& timeline) {
  if (timeline.total_time.value() <= 0.0) return 0.0;
  return timeline.exposed_comm_time.value() / timeline.total_time.value();
}

}  // namespace wrht::dnn
