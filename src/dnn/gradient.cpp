#include "dnn/gradient.hpp"

namespace wrht::dnn {

util::Bytes layer_gradient_bytes(const Layer& layer, DType dtype) {
  return util::Bytes(layer.params * dtype_bytes(dtype));
}

std::vector<Bucket> bucketize(const Model& model,
                              const BucketingOptions& options) {
  std::vector<Bucket> buckets;
  Bucket current;
  // Reverse layer order: the last layer's gradient is ready first.
  for (std::size_t i = model.layers().size(); i-- > 0;) {
    const util::Bytes bytes =
        layer_gradient_bytes(model.layers()[i], options.dtype);
    if (bytes.count() == 0) {
      // Parameter-free layers (pooling) ride along in the current bucket so
      // indices stay complete.
      current.layer_indices.push_back(i);
      continue;
    }
    if (!current.layer_indices.empty() &&
        current.bytes + bytes > options.capacity) {
      buckets.push_back(std::move(current));
      current = Bucket{};
    }
    current.layer_indices.push_back(i);
    current.bytes += bytes;
  }
  if (!current.layer_indices.empty()) buckets.push_back(std::move(current));
  return buckets;
}

util::Bytes total_bucket_bytes(const std::vector<Bucket>& buckets) {
  util::Bytes total;
  for (const Bucket& bucket : buckets) total += bucket.bytes;
  return total;
}

}  // namespace wrht::dnn
