// Deterministic sampling primitives for the workload generators.
//
// Serving-trace realism needs exactly three shapes: exponential gaps
// (Poisson arrivals and their modulated variants), lognormal payloads (ML
// gradient sizes cluster on a log scale), and bounded Pareto participant
// counts (most collectives are small, a heavy tail spans the ring).  All of
// them draw from util::Rng — the repo's only sanctioned RNG — through
// inverse-CDF / Box-Muller transforms with a FIXED consumption pattern, so
// a given seed yields the same sample stream on every platform and the
// generator's byte-identical-trace guarantee holds.
#pragma once

#include "util/random.hpp"

namespace wrht::workload {

/// Exponential with rate `rate` (> 0): mean 1/rate.  Consumes one u64.
[[nodiscard]] double sample_exponential(util::Rng& rng, double rate);

/// Standard normal via Box-Muller.  Always consumes exactly two u64s and
/// uses only the cosine branch — a cached "spare" would make the draw count
/// depend on call history, which replay determinism cannot afford.
[[nodiscard]] double sample_standard_normal(util::Rng& rng);

/// Lognormal: exp(mu + sigma * N(0,1)).  Median exp(mu).  Consumes two
/// u64s.
[[nodiscard]] double sample_lognormal(util::Rng& rng, double mu, double sigma);

/// Bounded Pareto on [lo, hi] with tail index `alpha` (> 0, lo < hi) via
/// the inverse CDF.  Consumes one u64.
[[nodiscard]] double sample_bounded_pareto(util::Rng& rng, double alpha,
                                           double lo, double hi);

/// Mean of the bounded Pareto above — what the distribution-sanity tests
/// compare empirical averages against.
[[nodiscard]] double bounded_pareto_mean(double alpha, double lo, double hi);

}  // namespace wrht::workload
