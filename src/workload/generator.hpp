// Deterministic arrival-process workload generator — the synthetic front
// end of the million-job serving path.
//
// A WorkloadGenerator is a runtime::JobSource: CollectiveRuntime::serve()
// pulls one JobSpec at a time, so a million-job workload is generated on
// demand and never materialized.  Three arrival processes cover the serving
// literature's standard shapes:
//
//   kPoisson  memoryless arrivals at a constant rate (the M/G/k baseline);
//   kDiurnal  a sinusoidally modulated Poisson process (Lewis-Shedler
//             thinning against the peak rate) — the day/night load curve
//             compressed to a configurable period;
//   kBursty   a two-state Markov-modulated Poisson process: quiet periods
//             punctuated by exponentially-long bursts at a rate multiplier,
//             the ML-inference "everyone retrains at once" pattern.
//
// Per-job marks are heavy-tailed the way real collective mixes are:
// participant counts draw from a bounded Pareto (most groups small, a tail
// spanning the ring), payloads from a clamped lognormal, and a configurable
// fraction of jobs carries deadlines / elevated priority / explicit band
// requests.  Every sample draws from one util::Rng in a fixed order, so a
// seed fully determines the byte sequence of the emitted trace (tests
// serialize two generators and compare bytes).
#pragma once

#include <cstdint>
#include <optional>

#include "runtime/faults.hpp"
#include "runtime/job.hpp"
#include "runtime/runtime.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace wrht::workload {

enum class ArrivalProcess : std::uint8_t {
  kPoisson,
  kDiurnal,
  kBursty,
};

[[nodiscard]] const char* arrival_process_name(ArrivalProcess process);
/// Parse "poisson" / "diurnal" / "bursty"; nullopt otherwise.
[[nodiscard]] std::optional<ArrivalProcess> parse_arrival_process(
    const std::string& name);

struct WorkloadConfig {
  std::uint64_t seed = 1;
  /// Jobs the generator emits before reporting exhaustion.
  std::uint64_t num_jobs = 1000;
  /// Ring participants are drawn from [0, ring_size).
  std::uint32_t ring_size = 64;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// Long-run average arrival rate, jobs per simulated second.  The
  /// diurnal/bursty processes are normalized so their time-average matches
  /// this too, which keeps offered load comparable across processes.
  double mean_rate = 200.0;
  /// Diurnal modulation: rate(t) = mean_rate * (1 + amplitude *
  /// sin(2*pi*t/period)).  Amplitude must sit in [0, 1).
  double diurnal_amplitude = 0.6;
  double diurnal_period_s = 5.0;
  /// Bursty (MMPP-2): bursts run at `burst_rate_multiplier` times the quiet
  /// rate, last Exp(mean = burst_length_s), and occupy `burst_fraction` of
  /// time; the quiet rate is derived so the long-run mean stays mean_rate.
  double burst_rate_multiplier = 8.0;
  double burst_fraction = 0.1;
  double burst_length_s = 0.05;

  /// Participant count ~ floor(BoundedPareto(alpha, [min, max])), sampled
  /// without replacement from the ring and emitted ascending (the runtime's
  /// spec contract).  max_participants == 0 means "the whole ring".
  double participant_alpha = 1.5;
  std::uint32_t min_participants = 2;
  std::uint32_t max_participants = 0;

  /// Payload ~ Lognormal(log(payload_median), payload_sigma) bytes, clamped
  /// to [min_payload, max_payload].
  util::Bytes payload_median = util::kilobytes(512);
  double payload_sigma = 1.6;
  util::Bytes min_payload = util::kilobytes(4);
  util::Bytes max_payload = util::megabytes(256);

  /// Fraction of jobs asking for an explicit band (uniform in [2, 8]
  /// wavelengths); the rest leave requested_wavelengths 0 (runtime default).
  double explicit_request_fraction = 0.25;
  /// Fraction of jobs carrying elevated priority `high_priority`.
  double high_priority_fraction = 0.1;
  std::int32_t high_priority = 5;
  /// Fraction of jobs carrying a deadline: turnaround budget =
  /// deadline_slack * Exp(mean = 1) + deadline_floor_s seconds.
  double deadline_fraction = 0.5;
  double deadline_slack_s = 0.5;
  double deadline_floor_s = 0.05;

  /// Fault process riding alongside the job stream (chaos mode).  All
  /// MTBFs are fleet-wide, exactly as runtime::FaultInjectorConfig reads
  /// them; fault_horizon 0 (the default) disables faults entirely.  The
  /// injector is minted by make_fault_injector() from its OWN derived
  /// seed — enabling or tuning faults never draws from the job stream's
  /// Rng, so the emitted job trace is byte-identical with chaos on or off.
  util::Seconds fault_horizon{0.0};
  util::Seconds transceiver_mtbf{0.0};
  util::Seconds node_mtbf{0.0};
  util::Seconds tor_mtbf{0.0};
  util::Seconds wavelength_mtbf{0.0};
  /// Mean repair time (0 = permanent faults; chaos runs should keep this
  /// positive so suspended work can always resume).
  util::Seconds fault_mttr{0.0};
  /// Subject spaces the ring itself cannot tell the injector: degradable
  /// wavelengths and ToR switches (ring positions come from ring_size).
  std::uint32_t fault_num_wavelengths = 0;
  std::uint32_t fault_num_tors = 0;
};

class WorkloadGenerator : public runtime::JobSource {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  /// The next spec (arrivals nondecreasing), or nullopt after num_jobs.
  std::optional<runtime::JobSpec> next() override;

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// The injector config this workload's fault fields describe — seeded
  /// from a fixed derivation of the workload seed, independent of the job
  /// stream's Rng state.
  [[nodiscard]] runtime::FaultInjectorConfig fault_injector_config() const;
  /// Mint the matching chaos source.  Pull-compatible with
  /// RuntimeConfig::faults; deterministic per workload seed.
  [[nodiscard]] runtime::FaultInjector make_fault_injector() const;

 private:
  [[nodiscard]] double next_gap();
  [[nodiscard]] std::vector<topo::NodeId> sample_participants();

  WorkloadConfig config_;
  util::Rng rng_;
  std::uint64_t emitted_ = 0;
  double clock_s_ = 0.0;
  /// MMPP state (kBursty only): whether the process sits in a burst, and
  /// when the current state ends.
  bool in_burst_ = false;
  double state_end_s_ = 0.0;
};

}  // namespace wrht::workload
