#include "workload/trace_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace wrht::workload {

const char* trace_format_name(TraceFormat format) {
  switch (format) {
    case TraceFormat::kJsonl:
      return "jsonl";
    case TraceFormat::kCsv:
      return "csv";
  }
  return "?";
}

std::optional<TraceFormat> parse_trace_format(const std::string& name) {
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "csv") return TraceFormat::kCsv;
  return std::nullopt;
}

std::string format_double_exact(double v) {
  WRHT_REQUIRE(v == v && v <= 1.7976931348623157e308 &&
                   v >= -1.7976931348623157e308,
               "format_double_exact: non-finite value");
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

const std::vector<std::string>& csv_columns() {
  static const std::vector<std::string> kColumns = {
      "arrival",  "participants", "payload", "requested", "min",
      "weight",   "priority",     "pin",     "deadline",  "name"};
  return kColumns;
}

std::optional<runtime::SubstratePin> parse_pin(const std::string& name) {
  if (name == "any") return runtime::SubstratePin::kAny;
  if (name == "optical-only") return runtime::SubstratePin::kOpticalOnly;
  if (name == "electrical-only") {
    return runtime::SubstratePin::kElectricalOnly;
  }
  return std::nullopt;
}

std::string participants_cell(const std::vector<topo::NodeId>& participants) {
  std::string cell;
  for (const topo::NodeId node : participants) {
    if (!cell.empty()) cell += ' ';
    cell += std::to_string(node);
  }
  return cell;
}

/// Split one RFC-4180 record into cells (handles quoted cells and ""
/// escapes; a trace writer never emits embedded newlines, so one line is
/// one record).
std::vector<std::string> split_csv(const std::string& line,
                                   std::uint64_t line_number) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  WRHT_REQUIRE(!quoted,
               "TraceReader: unterminated quote on line " << line_number);
  cells.push_back(std::move(cell));
  return cells;
}

runtime::JobSpec spec_from_json(const std::string& line,
                                std::uint64_t line_number) {
  const obs::JsonParseResult parsed = obs::json_parse(line);
  WRHT_REQUIRE(parsed.ok && parsed.value.kind == obs::JsonValue::Kind::kObject,
               "TraceReader: line " << line_number
                                    << " is not a JSON object: "
                                    << parsed.error);
  const obs::JsonValue& v = parsed.value;
  runtime::JobSpec spec;
  const obs::JsonValue* arrival = v.find("arrival");
  const obs::JsonValue* participants = v.find("participants");
  const obs::JsonValue* payload = v.find("payload");
  WRHT_REQUIRE(arrival && participants && payload &&
                   participants->kind == obs::JsonValue::Kind::kArray,
               "TraceReader: line " << line_number
                                    << " is missing arrival / participants / "
                                       "payload");
  spec.arrival = util::Seconds(arrival->number);
  for (const obs::JsonValue& node : participants->array) {
    spec.participants.push_back(static_cast<topo::NodeId>(node.number));
  }
  spec.payload = util::Bytes(static_cast<std::uint64_t>(payload->number));
  if (const obs::JsonValue* f = v.find("requested")) {
    spec.requested_wavelengths = static_cast<std::uint32_t>(f->number);
  }
  if (const obs::JsonValue* f = v.find("min")) {
    spec.min_wavelengths = static_cast<std::uint32_t>(f->number);
  }
  if (const obs::JsonValue* f = v.find("weight")) spec.weight = f->number;
  if (const obs::JsonValue* f = v.find("priority")) {
    spec.priority = static_cast<std::int32_t>(f->number);
  }
  if (const obs::JsonValue* f = v.find("pin")) {
    const std::optional<runtime::SubstratePin> pin = parse_pin(f->string);
    WRHT_REQUIRE(pin, "TraceReader: line " << line_number << " names unknown "
                                           << "pin '" << f->string << "'");
    spec.pin = *pin;
  }
  if (const obs::JsonValue* f = v.find("deadline")) {
    spec.deadline = util::Seconds(f->number);
  }
  if (const obs::JsonValue* f = v.find("name")) spec.name = f->string;
  return spec;
}

runtime::JobSpec spec_from_csv(const std::string& line,
                               std::uint64_t line_number) {
  const std::vector<std::string> cells = split_csv(line, line_number);
  WRHT_REQUIRE(cells.size() == csv_columns().size(),
               "TraceReader: line " << line_number << " has " << cells.size()
                                    << " cells, expected "
                                    << csv_columns().size());
  runtime::JobSpec spec;
  spec.arrival = util::Seconds(std::strtod(cells[0].c_str(), nullptr));
  const std::string& nodes = cells[1];
  std::size_t pos = 0;
  while (pos < nodes.size()) {
    char* end = nullptr;
    spec.participants.push_back(static_cast<topo::NodeId>(
        std::strtoul(nodes.c_str() + pos, &end, 10)));
    pos = static_cast<std::size_t>(end - nodes.c_str());
    while (pos < nodes.size() && nodes[pos] == ' ') ++pos;
  }
  spec.payload = util::Bytes(std::strtoull(cells[2].c_str(), nullptr, 10));
  spec.requested_wavelengths =
      static_cast<std::uint32_t>(std::strtoul(cells[3].c_str(), nullptr, 10));
  spec.min_wavelengths =
      static_cast<std::uint32_t>(std::strtoul(cells[4].c_str(), nullptr, 10));
  spec.weight = std::strtod(cells[5].c_str(), nullptr);
  spec.priority =
      static_cast<std::int32_t>(std::strtol(cells[6].c_str(), nullptr, 10));
  const std::optional<runtime::SubstratePin> pin = parse_pin(cells[7]);
  WRHT_REQUIRE(pin, "TraceReader: line " << line_number << " names unknown "
                                         << "pin '" << cells[7] << "'");
  spec.pin = *pin;
  spec.deadline = util::Seconds(std::strtod(cells[8].c_str(), nullptr));
  spec.name = cells[9];
  return spec;
}

std::optional<runtime::FaultDomain> parse_fault_domain(
    const std::string& name) {
  if (name == "transceiver") return runtime::FaultDomain::kTransceiver;
  if (name == "node") return runtime::FaultDomain::kNode;
  if (name == "tor") return runtime::FaultDomain::kTor;
  if (name == "wavelength") return runtime::FaultDomain::kWavelength;
  return std::nullopt;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, TraceFormat format)
    : out_(&out), format_(format), csv_(out) {
  if (format_ == TraceFormat::kCsv) csv_.write_header(csv_columns());
}

void TraceWriter::write(const runtime::JobSpec& spec) {
  if (format_ == TraceFormat::kCsv) {
    csv_.write_row({format_double_exact(spec.arrival.value()),
                    participants_cell(spec.participants),
                    std::to_string(spec.payload.count()),
                    std::to_string(spec.requested_wavelengths),
                    std::to_string(spec.min_wavelengths),
                    format_double_exact(spec.weight),
                    std::to_string(spec.priority),
                    runtime::substrate_pin_name(spec.pin),
                    format_double_exact(spec.deadline.value()), spec.name});
    ++written_;
    return;
  }
  // JSONL: defaulted fields are omitted — at a million lines the savings
  // are real — and re-defaulted by the reader.
  std::string line = "{\"arrival\":" + format_double_exact(
                         spec.arrival.value());
  line += ",\"participants\":[";
  for (std::size_t i = 0; i < spec.participants.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(spec.participants[i]);
  }
  line += "],\"payload\":" + std::to_string(spec.payload.count());
  if (spec.requested_wavelengths != 0) {
    line += ",\"requested\":" + std::to_string(spec.requested_wavelengths);
  }
  if (spec.min_wavelengths != 1) {
    line += ",\"min\":" + std::to_string(spec.min_wavelengths);
  }
  // simlint-allow(float-eq): omission keys on the exact default bits
  if (spec.weight != 1.0) {
    line += ",\"weight\":" + format_double_exact(spec.weight);
  }
  if (spec.priority != 0) {
    line += ",\"priority\":" + std::to_string(spec.priority);
  }
  if (spec.pin != runtime::SubstratePin::kAny) {
    line += ",\"pin\":";
    line += obs::json_quote(runtime::substrate_pin_name(spec.pin));
  }
  // simlint-allow(float-eq): omission keys on the exact default bits
  if (spec.deadline.value() != 0.0) {
    line += ",\"deadline\":" + format_double_exact(spec.deadline.value());
  }
  if (!spec.name.empty()) {
    line += ",\"name\":" + obs::json_quote(spec.name);
  }
  line += "}\n";
  *out_ << line;
  ++written_;
}

TraceReader::TraceReader(std::istream& in, TraceFormat format)
    : in_(&in), format_(format) {
  if (format_ == TraceFormat::kCsv) {
    std::string header;
    std::getline(*in_, header);
    ++line_number_;
    if (!header.empty() && header.back() == '\r') header.pop_back();
    std::string expected;
    for (const std::string& column : csv_columns()) {
      if (!expected.empty()) expected += ',';
      expected += column;
    }
    WRHT_REQUIRE(header == expected,
                 "TraceReader: CSV header mismatch, got '" << header << "'");
  }
}

std::optional<runtime::JobSpec> TraceReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    ++read_;
    return format_ == TraceFormat::kJsonl
               ? spec_from_json(line, line_number_)
               : spec_from_csv(line, line_number_);
  }
  return std::nullopt;
}

std::uint64_t record_trace(runtime::JobSource& source, std::ostream& out,
                           TraceFormat format) {
  TraceWriter writer(out, format);
  while (std::optional<runtime::JobSpec> spec = source.next()) {
    writer.write(*spec);
  }
  return writer.written();
}

FaultTraceWriter::FaultTraceWriter(std::ostream& out) : out_(&out) {}

void FaultTraceWriter::write(const runtime::FaultSpec& fault) {
  std::string line = "{\"at\":" + format_double_exact(fault.at.value());
  line += ",\"domain\":";
  line += obs::json_quote(runtime::fault_domain_name(fault.domain));
  if (fault.subject != 0) {
    line += ",\"subject\":" + std::to_string(fault.subject);
  }
  // simlint-allow(float-eq): omission keys on the exact default bits
  if (fault.repair_after.value() != 0.0) {
    line += ",\"repair\":" + format_double_exact(fault.repair_after.value());
  }
  line += "}\n";
  *out_ << line;
  ++written_;
}

FaultTraceReader::FaultTraceReader(std::istream& in) : in_(&in) {}

std::optional<runtime::FaultSpec> FaultTraceReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const obs::JsonParseResult parsed = obs::json_parse(line);
    WRHT_REQUIRE(
        parsed.ok && parsed.value.kind == obs::JsonValue::Kind::kObject,
        "FaultTraceReader: line " << line_number_
                                  << " is not a JSON object: "
                                  << parsed.error);
    const obs::JsonValue& v = parsed.value;
    const obs::JsonValue* at = v.find("at");
    const obs::JsonValue* domain = v.find("domain");
    WRHT_REQUIRE(at && domain,
                 "FaultTraceReader: line " << line_number_
                                           << " is missing at / domain");
    runtime::FaultSpec fault;
    fault.at = util::Seconds(at->number);
    WRHT_REQUIRE(at->number >= last_at_,
                 "FaultTraceReader: line " << line_number_
                                           << " goes back in time");
    last_at_ = at->number;
    const std::optional<runtime::FaultDomain> parsed_domain =
        parse_fault_domain(domain->string);
    WRHT_REQUIRE(parsed_domain, "FaultTraceReader: line "
                                    << line_number_ << " names unknown domain '"
                                    << domain->string << "'");
    fault.domain = *parsed_domain;
    if (const obs::JsonValue* f = v.find("subject")) {
      fault.subject = static_cast<std::uint32_t>(f->number);
    }
    if (const obs::JsonValue* f = v.find("repair")) {
      fault.repair_after = util::Seconds(f->number);
    }
    ++read_;
    return fault;
  }
  return std::nullopt;
}

std::uint64_t record_fault_trace(runtime::FaultSource& source,
                                 std::ostream& out) {
  FaultTraceWriter writer(out);
  while (std::optional<runtime::FaultSpec> fault = source.next()) {
    writer.write(*fault);
  }
  return writer.written();
}

}  // namespace wrht::workload
