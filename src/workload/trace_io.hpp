// Submission-trace serialization: stream JobSpecs to and from disk.
//
// A trace is the durable form of a workload — recorded from a generator
// once, replayed into CollectiveRuntime::serve() forever after.  Two
// formats, both line-oriented so a million-job trace streams in O(1)
// memory:
//
//   kJsonl  one JSON object per line.  Each line parses with the strict
//           obs::json parser (the round-trip tests prove it), and numeric
//           fields are printed with shortest-round-trip precision, so a
//           replayed trace reproduces the recorded RuntimeReport bit for
//           bit.
//   kCsv    one RFC-4180 row per job (header row first) via util::CsvWriter;
//           participants are a space-separated list inside one cell.
//
// TraceReader is a runtime::JobSource: serve() pulls specs straight off the
// stream, one line at a time — the trace is never materialized.  Defaulted
// fields are omitted on write (JSONL) and re-defaulted on read, keeping
// million-line traces compact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "runtime/faults.hpp"
#include "runtime/job.hpp"
#include "runtime/runtime.hpp"
#include "util/csv.hpp"

namespace wrht::workload {

enum class TraceFormat : std::uint8_t {
  kJsonl,
  kCsv,
};

[[nodiscard]] const char* trace_format_name(TraceFormat format);
/// Parse "jsonl" / "csv"; nullopt otherwise.
[[nodiscard]] std::optional<TraceFormat> parse_trace_format(
    const std::string& name);

/// `v` printed with the fewest significant digits (15..17) that parse back
/// to exactly `v` — the property that makes text traces replay
/// bit-identically.  Requires a finite value.
[[nodiscard]] std::string format_double_exact(double v);

/// Streams JobSpecs out.  The stream must outlive the writer; kCsv writes
/// its header row at construction.
class TraceWriter {
 public:
  TraceWriter(std::ostream& out, TraceFormat format);
  void write(const runtime::JobSpec& spec);
  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  std::ostream* out_;
  TraceFormat format_;
  util::CsvWriter csv_;
  std::uint64_t written_ = 0;
};

/// Streams JobSpecs in; a JobSource serve() can pull from directly.  The
/// stream must outlive the reader.  A malformed line aborts with the line
/// number — a trace is machine-written, so damage means the wrong file, not
/// a tenant typo.
class TraceReader : public runtime::JobSource {
 public:
  TraceReader(std::istream& in, TraceFormat format);
  std::optional<runtime::JobSpec> next() override;
  [[nodiscard]] std::uint64_t read() const { return read_; }

 private:
  std::istream* in_;
  TraceFormat format_;
  std::uint64_t read_ = 0;
  std::uint64_t line_number_ = 0;
};

/// Drain `source` through a TraceWriter; returns the number of specs
/// recorded.  The trace-then-replay path of examples/trace_serve.
std::uint64_t record_trace(runtime::JobSource& source, std::ostream& out,
                           TraceFormat format);

/// Streams FaultSpecs out as JSONL — the durable form of a chaos schedule,
/// the fault counterpart of TraceWriter.  One object per line:
///   {"at":0.0125,"domain":"node","subject":7,"repair":0.003}
/// with the same discipline as job traces: shortest-round-trip doubles and
/// defaulted fields (subject 0, permanent faults) omitted on write and
/// re-defaulted on read, so record-then-replay is byte-stable.
class FaultTraceWriter {
 public:
  explicit FaultTraceWriter(std::ostream& out);
  void write(const runtime::FaultSpec& fault);
  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  std::ostream* out_;
  std::uint64_t written_ = 0;
};

/// Streams FaultSpecs back in; a runtime::FaultSource that
/// RuntimeConfig::faults can point at directly, so a recorded chaos run
/// replays through the same pull interface the injector fills.  Malformed
/// or time-warped (decreasing `at`) lines abort with the line number.
class FaultTraceReader : public runtime::FaultSource {
 public:
  explicit FaultTraceReader(std::istream& in);
  std::optional<runtime::FaultSpec> next() override;
  [[nodiscard]] std::uint64_t read() const { return read_; }

 private:
  std::istream* in_;
  std::uint64_t read_ = 0;
  std::uint64_t line_number_ = 0;
  double last_at_ = 0.0;
};

/// Drain a fault source to JSONL; returns the number of faults recorded.
std::uint64_t record_fault_trace(runtime::FaultSource& source,
                                 std::ostream& out);

}  // namespace wrht::workload
