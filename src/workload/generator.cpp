#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.hpp"
#include "workload/distributions.hpp"

namespace wrht::workload {

const char* arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
    case ArrivalProcess::kBursty:
      return "bursty";
  }
  return "?";
}

std::optional<ArrivalProcess> parse_arrival_process(const std::string& name) {
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  if (name == "bursty") return ArrivalProcess::kBursty;
  return std::nullopt;
}

namespace {

/// Quiet-state rate of the MMPP-2 such that the long-run average over quiet
/// and burst states equals `mean_rate`.
double mmpp_quiet_rate(const WorkloadConfig& c) {
  return c.mean_rate /
         (1.0 - c.burst_fraction + c.burst_rate_multiplier * c.burst_fraction);
}

/// Mean quiet-state sojourn that makes bursts occupy `burst_fraction` of
/// time given their own mean length.
double mmpp_quiet_length(const WorkloadConfig& c) {
  return c.burst_length_s * (1.0 - c.burst_fraction) / c.burst_fraction;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  WRHT_REQUIRE(config_.ring_size >= 2,
               "WorkloadGenerator: ring_size must be >= 2");
  WRHT_REQUIRE(config_.mean_rate > 0.0,
               "WorkloadGenerator: mean_rate must be positive");
  WRHT_REQUIRE(
      config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0,
      "WorkloadGenerator: diurnal_amplitude must sit in [0, 1)");
  WRHT_REQUIRE(config_.diurnal_period_s > 0.0,
               "WorkloadGenerator: diurnal_period_s must be positive");
  WRHT_REQUIRE(
      config_.burst_fraction > 0.0 && config_.burst_fraction < 1.0 &&
          config_.burst_rate_multiplier >= 1.0 && config_.burst_length_s > 0.0,
      "WorkloadGenerator: bursty process needs burst_fraction in (0, 1), "
      "multiplier >= 1, positive burst length");
  WRHT_REQUIRE(config_.min_participants >= 2 &&
                   config_.min_participants <= config_.ring_size,
               "WorkloadGenerator: min_participants must sit in [2, ring]");
  WRHT_REQUIRE(config_.participant_alpha > 0.0,
               "WorkloadGenerator: participant_alpha must be positive");
  WRHT_REQUIRE(config_.min_payload.count() > 0 &&
                   config_.min_payload <= config_.max_payload,
               "WorkloadGenerator: need 0 < min_payload <= max_payload");
  if (config_.arrivals == ArrivalProcess::kBursty) {
    // Start in the quiet state with a full exponential sojourn ahead.
    state_end_s_ =
        sample_exponential(rng_, 1.0 / mmpp_quiet_length(config_));
  }
}

double WorkloadGenerator::next_gap() {
  switch (config_.arrivals) {
    case ArrivalProcess::kPoisson:
      return sample_exponential(rng_, config_.mean_rate);
    case ArrivalProcess::kDiurnal: {
      // Lewis-Shedler thinning against the peak rate: candidate gaps come
      // from a homogeneous process at the peak; each candidate survives
      // with probability rate(t)/peak.  Exact for any bounded rate curve.
      const double peak = config_.mean_rate * (1.0 + config_.diurnal_amplitude);
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      double t = clock_s_;
      while (true) {
        t += sample_exponential(rng_, peak);
        const double rate =
            config_.mean_rate *
            (1.0 + config_.diurnal_amplitude *
                       std::sin(kTwoPi * t / config_.diurnal_period_s));
        if (rng_.next_double() * peak < rate) return t - clock_s_;
      }
    }
    case ArrivalProcess::kBursty: {
      // MMPP-2: exponential arrival gaps at the current state's rate; a gap
      // that crosses the state boundary is discarded past the boundary and
      // redrawn there (memorylessness makes the restart exact).
      const double quiet_rate = mmpp_quiet_rate(config_);
      const double burst_rate = quiet_rate * config_.burst_rate_multiplier;
      double t = clock_s_;
      while (true) {
        const double rate = in_burst_ ? burst_rate : quiet_rate;
        const double candidate = t + sample_exponential(rng_, rate);
        if (candidate <= state_end_s_) return candidate - clock_s_;
        t = state_end_s_;
        in_burst_ = !in_burst_;
        const double mean_sojourn = in_burst_ ? config_.burst_length_s
                                              : mmpp_quiet_length(config_);
        state_end_s_ = t + sample_exponential(rng_, 1.0 / mean_sojourn);
      }
    }
  }
  WRHT_CHECK(false, "WorkloadGenerator: unknown arrival process");
  return 0.0;
}

std::vector<topo::NodeId> WorkloadGenerator::sample_participants() {
  const std::uint32_t lo = config_.min_participants;
  const std::uint32_t hi = config_.max_participants == 0
                               ? config_.ring_size
                               : std::min(config_.max_participants,
                                          config_.ring_size);
  std::uint32_t count = lo;
  if (hi > lo) {
    // floor(BoundedPareto on [lo, hi + 1)) puts integer mass on [lo, hi]
    // with the Pareto tail shape.
    const double x = sample_bounded_pareto(rng_, config_.participant_alpha,
                                           static_cast<double>(lo),
                                           static_cast<double>(hi) + 1.0);
    count = std::min(hi, static_cast<std::uint32_t>(x));
  }
  // Floyd's sampling: exactly `count` draws, no rejection, no O(ring)
  // shuffle — participant sets stay cheap even on big rings.
  std::vector<topo::NodeId> chosen;
  chosen.reserve(count);
  for (std::uint32_t j = config_.ring_size - count; j < config_.ring_size;
       ++j) {
    const auto pick = static_cast<topo::NodeId>(rng_.next_below(j + 1));
    if (std::find(chosen.begin(), chosen.end(), pick) != chosen.end()) {
      chosen.push_back(j);
    } else {
      chosen.push_back(pick);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

runtime::FaultInjectorConfig WorkloadGenerator::fault_injector_config() const {
  runtime::FaultInjectorConfig fc;
  // Fixed odd-constant derivation keeps the chaos seed stream disjoint from
  // the job stream (rng_ is seeded with config_.seed itself) while staying a
  // pure function of the workload seed.
  fc.seed = config_.seed * 0xC2B2AE3D27D4EB4FULL + 0x165667B19E3779F9ULL;
  fc.horizon = config_.fault_horizon;
  fc.transceiver_mtbf = config_.transceiver_mtbf;
  fc.node_mtbf = config_.node_mtbf;
  fc.tor_mtbf = config_.tor_mtbf;
  fc.wavelength_mtbf = config_.wavelength_mtbf;
  fc.mttr = config_.fault_mttr;
  fc.ring_size = config_.ring_size;
  fc.num_wavelengths = config_.fault_num_wavelengths;
  fc.num_tors = config_.fault_num_tors;
  return fc;
}

runtime::FaultInjector WorkloadGenerator::make_fault_injector() const {
  return runtime::FaultInjector(fault_injector_config());
}

std::optional<runtime::JobSpec> WorkloadGenerator::next() {
  if (emitted_ >= config_.num_jobs) return std::nullopt;
  ++emitted_;
  clock_s_ += next_gap();

  runtime::JobSpec spec;
  spec.arrival = util::Seconds(clock_s_);
  spec.participants = sample_participants();

  const double raw_payload = sample_lognormal(
      rng_, std::log(config_.payload_median.as_double()),
      config_.payload_sigma);
  const double clamped =
      std::clamp(raw_payload, config_.min_payload.as_double(),
                 config_.max_payload.as_double());
  spec.payload = util::Bytes(static_cast<std::uint64_t>(clamped));

  if (rng_.next_double() < config_.explicit_request_fraction) {
    spec.requested_wavelengths =
        2 + static_cast<std::uint32_t>(rng_.next_below(7));
  }
  if (rng_.next_double() < config_.high_priority_fraction) {
    spec.priority = config_.high_priority;
  }
  if (rng_.next_double() < config_.deadline_fraction) {
    spec.deadline = util::Seconds(config_.deadline_floor_s +
                                  config_.deadline_slack_s *
                                      sample_exponential(rng_, 1.0));
  }
  return spec;
}

}  // namespace wrht::workload
