#include "workload/distributions.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wrht::workload {

double sample_exponential(util::Rng& rng, double rate) {
  WRHT_REQUIRE(rate > 0.0, "sample_exponential: rate must be positive, got "
                               << rate);
  // 1 - u keeps the argument in (0, 1]: next_double() can return exactly 0
  // but never 1, so the log never sees 0.
  return -std::log(1.0 - rng.next_double()) / rate;
}

double sample_standard_normal(util::Rng& rng) {
  const double u1 = 1.0 - rng.next_double();  // (0, 1]
  const double u2 = rng.next_double();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double sample_lognormal(util::Rng& rng, double mu, double sigma) {
  WRHT_REQUIRE(sigma >= 0.0, "sample_lognormal: sigma must be >= 0, got "
                                 << sigma);
  return std::exp(mu + sigma * sample_standard_normal(rng));
}

double sample_bounded_pareto(util::Rng& rng, double alpha, double lo,
                             double hi) {
  WRHT_REQUIRE(alpha > 0.0 && 0.0 < lo && lo < hi,
               "sample_bounded_pareto: need alpha > 0 and 0 < lo < hi, got "
                   << alpha << " on [" << lo << ", " << hi << "]");
  const double u = rng.next_double();  // [0, 1)
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the Pareto truncated to [lo, hi]; u = 0 gives lo, and
  // u -> 1 approaches hi from below.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double bounded_pareto_mean(double alpha, double lo, double hi) {
  WRHT_REQUIRE(alpha > 0.0 && 0.0 < lo && lo < hi,
               "bounded_pareto_mean: need alpha > 0 and 0 < lo < hi");
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // simlint-allow(float-eq): alpha == 1 is an exact parameter sentinel
  if (alpha == 1.0) return lo * hi / (hi - lo) * std::log(hi / lo);
  return la / (1.0 - la / ha) * (alpha / (alpha - 1.0)) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
}

}  // namespace wrht::workload
