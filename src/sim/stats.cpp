#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include "util/check.hpp"

namespace wrht::sim {

void Summary::record(double x) {
  ++count_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double first_bound, double growth,
                     std::size_t num_buckets) {
  WRHT_REQUIRE(first_bound > 0.0 && growth > 1.0 && num_buckets > 0,
               "Histogram: invalid parameters (first_bound="
                   << first_bound << ", growth=" << growth << ", buckets="
                   << num_buckets << ")");
  bounds_.resize(num_buckets);
  counts_.assign(num_buckets + 1, 0);  // +1 overflow bucket
  double bound = first_bound;
  for (std::size_t i = 0; i < num_buckets; ++i) {
    bounds_[i] = bound;
    bound *= growth;
  }
}

void Histogram::record(double x) {
  ++count_;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += static_cast<double>(counts_[i]);
    if (seen >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

}  // namespace wrht::sim
