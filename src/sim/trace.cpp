#include "sim/trace.hpp"

#include <utility>

namespace wrht::sim {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kStepBegin:
      return "step_begin";
    case TraceKind::kStepEnd:
      return "step_end";
    case TraceKind::kTransferBegin:
      return "transfer_begin";
    case TraceKind::kTransferEnd:
      return "transfer_end";
    case TraceKind::kTune:
      return "tune";
    case TraceKind::kFlowBegin:
      return "flow_begin";
    case TraceKind::kFlowEnd:
      return "flow_end";
    case TraceKind::kJobAdmit:
      return "job_admit";
    case TraceKind::kJobComplete:
      return "job_complete";
    case TraceKind::kJobPreempt:
      return "job_preempt";
    case TraceKind::kJobResume:
      return "job_resume";
    case TraceKind::kJobResize:
      return "job_resize";
    case TraceKind::kJobPlaceOptical:
      return "job_place_optical";
    case TraceKind::kJobPlaceElectrical:
      return "job_place_electrical";
    case TraceKind::kRouteDecision:
      return "route_decision";
    case TraceKind::kStepRetimed:
      return "step_retimed";
    case TraceKind::kJobFused:
      return "job_fused";
    case TraceKind::kNodeFail:
      return "node_fail";
    case TraceKind::kWavelengthDegrade:
      return "wavelength_degrade";
    case TraceKind::kFaultRepair:
      return "fault_repair";
    case TraceKind::kJobMigrate:
      return "job_migrate";
    case TraceKind::kJobKilled:
      return "job_killed";
    case TraceKind::kCustom:
      return "custom";
  }
  return "?";
}

// Adding a kind after kCustom would silently skip the exhaustiveness test's
// walk; this pins the convention that kCustom stays last.
static_assert(kTraceKindCount == 23,
              "TraceKind changed: update kTraceKindCount's expectation, keep "
              "kCustom last, and add the name case above");

void Trace::record(util::Seconds time, TraceKind kind, std::int64_t a,
                   std::int64_t b, std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, kind, a, b, std::move(detail)});
}

std::string Trace::to_string() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += "t=" + util::to_string(e.time);
    out += ' ';
    out += trace_kind_name(e.kind);
    if (e.a >= 0) out += " a=" + std::to_string(e.a);
    if (e.b >= 0) out += " b=" + std::to_string(e.b);
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += '\n';
  }
  return out;
}

}  // namespace wrht::sim
