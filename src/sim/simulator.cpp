#include "sim/simulator.hpp"

#include "util/check.hpp"
#include <utility>

namespace wrht::sim {

std::uint64_t Simulator::schedule_in(util::Seconds delay,
                                     EventCallback callback) {
  WRHT_REQUIRE(delay.value() >= 0.0,
               "Simulator: negative delay " << delay.value());
  return queue_.push(now_ + delay, std::move(callback));
}

std::uint64_t Simulator::schedule_at(util::Seconds when,
                                     EventCallback callback) {
  WRHT_REQUIRE(when >= now_, "Simulator: scheduling into the past ("
                                 << when.value() << " < " << now_.value()
                                 << ")");
  return queue_.push(when, std::move(callback));
}

void Simulator::step() {
  EventQueue::Popped event = queue_.pop();
  now_ = event.time;
  ++processed_;
  event.callback();
}

util::Seconds Simulator::run() {
  while (!queue_.empty()) step();
  return now_;
}

util::Seconds Simulator::run_until(util::Seconds horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) step();
  if (now_ < horizon && queue_.empty()) {
    // Nothing left to do before the horizon; the clock does not jump ahead
    // of the last processed event.
  }
  return now_;
}

}  // namespace wrht::sim
