#include "sim/simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace wrht::sim {

std::uint64_t Simulator::schedule_in(util::Seconds delay,
                                     EventCallback callback) {
  if (delay.value() < 0.0) {
    std::fprintf(stderr, "Simulator: negative delay %g\n", delay.value());
    std::abort();
  }
  return queue_.push(now_ + delay, std::move(callback));
}

std::uint64_t Simulator::schedule_at(util::Seconds when,
                                     EventCallback callback) {
  if (when < now_) {
    std::fprintf(stderr, "Simulator: scheduling into the past (%g < %g)\n",
                 when.value(), now_.value());
    std::abort();
  }
  return queue_.push(when, std::move(callback));
}

void Simulator::step() {
  EventQueue::Popped event = queue_.pop();
  now_ = event.time;
  ++processed_;
  event.callback();
}

util::Seconds Simulator::run() {
  while (!queue_.empty()) step();
  return now_;
}

util::Seconds Simulator::run_until(util::Seconds horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) step();
  if (now_ < horizon && queue_.empty()) {
    // Nothing left to do before the horizon; the clock does not jump ahead
    // of the last processed event.
  }
  return now_;
}

}  // namespace wrht::sim
