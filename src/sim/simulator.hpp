// The simulation kernel: a clock plus the event queue.  Network models
// schedule callbacks; the kernel advances time monotonically until the queue
// drains or a horizon is reached.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace wrht::sim {

class Simulator {
 public:
  [[nodiscard]] util::Seconds now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedule `callback` after `delay` (>= 0) from the current time.
  std::uint64_t schedule_in(util::Seconds delay, EventCallback callback);

  /// Schedule `callback` at absolute time `when` (>= now()).
  std::uint64_t schedule_at(util::Seconds when, EventCallback callback);

  bool cancel(std::uint64_t handle) { return queue_.cancel(handle); }

  /// Run until the event queue is empty.  Returns the final time.
  util::Seconds run();

  /// Run events with time <= horizon; the clock ends at
  /// min(horizon, last event time).  Events scheduled for later remain queued.
  util::Seconds run_until(util::Seconds horizon);

  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Direct access to the event queue for memory-behaviour knobs
  /// (EventQueue::set_recycling) and introspection in tests/benchmarks.
  [[nodiscard]] EventQueue& event_queue() { return queue_; }
  [[nodiscard]] const EventQueue& event_queue() const { return queue_; }

 private:
  void step();

  EventQueue queue_;
  util::Seconds now_{0.0};
  std::uint64_t processed_ = 0;
};

}  // namespace wrht::sim
