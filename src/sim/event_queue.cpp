#include "sim/event_queue.hpp"

#include "util/check.hpp"
#include <utility>

namespace wrht::sim {

std::uint64_t EventQueue::push(util::Seconds when, EventCallback callback) {
  const std::uint64_t handle = callbacks_.size();
  callbacks_.push_back(std::move(callback));
  cancelled_.push_back(false);
  heap_.push(Entry{when, next_sequence_++, handle});
  ++live_;
  return handle;
}

bool EventQueue::cancel(std::uint64_t handle) {
  if (handle >= cancelled_.size() || cancelled_[handle] ||
      !callbacks_[handle]) {
    return false;
  }
  cancelled_[handle] = true;
  callbacks_[handle] = nullptr;
  --live_;
  return true;
}

void EventQueue::drop_dead_entries() const {
  while (!heap_.empty() && cancelled_[heap_.top().handle]) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_dead_entries();
  return heap_.empty();
}

util::Seconds EventQueue::next_time() const {
  drop_dead_entries();
  WRHT_REQUIRE(!heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_entries();
  WRHT_REQUIRE(!heap_.empty(), "EventQueue::pop on empty queue");
  const Entry entry = heap_.top();
  heap_.pop();
  --live_;
  Popped popped{entry.time, std::move(callbacks_[entry.handle])};
  callbacks_[entry.handle] = nullptr;
  cancelled_[entry.handle] = true;
  return popped;
}

}  // namespace wrht::sim
