#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace wrht::sim {

std::uint64_t EventQueue::push(util::Seconds when, EventCallback callback) {
  std::uint32_t slot;
  if (recycling_ && !free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.live = true;
  const std::uint64_t handle =
      static_cast<std::uint64_t>(slot) |
      (static_cast<std::uint64_t>(s.generation) << 32);
  heap_.push_back(Entry{when, next_sequence_++, handle});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return handle;
}

bool EventQueue::cancel(std::uint64_t handle) {
  const std::uint32_t slot = slot_of(handle);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.live || s.generation != generation_of(handle)) return false;
  retire_slot(slot);
  --live_;
  // The heap entry stays behind as a tombstone until drop_dead_entries or
  // compaction reaps it.
  ++dead_entries_;
  maybe_compact();
  return true;
}

bool EventQueue::entry_dead(const Entry& entry) const {
  const Slot& s = slots_[slot_of(entry.handle)];
  return !s.live || s.generation != generation_of(entry.handle);
}

void EventQueue::drop_dead_entries() const {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --dead_entries_;
  }
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.callback = nullptr;
  s.live = false;
  // Bumping the generation invalidates every outstanding handle to this
  // slot, so it is safe to hand the slot out again immediately.
  ++s.generation;
  if (recycling_) free_.push_back(slot);
}

void EventQueue::maybe_compact() {
  // Rebuilding the heap is linear, so amortized cost stays O(1) per cancel
  // as long as we only do it when tombstones dominate.  make_heap over the
  // surviving (time, sequence, handle) entries reproduces the exact pop
  // order — the comparator never looks at heap layout.
  if (!recycling_) return;
  if (heap_.size() < 64 || dead_entries_ * 2 <= heap_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& entry) {
                               return entry_dead(entry);
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_entries_ = 0;
}

bool EventQueue::empty() const {
  drop_dead_entries();
  return heap_.empty();
}

util::Seconds EventQueue::next_time() const {
  drop_dead_entries();
  WRHT_REQUIRE(!heap_.empty(), "EventQueue::next_time on empty queue");
  return heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_entries();
  WRHT_REQUIRE(!heap_.empty(), "EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  const std::uint32_t slot = slot_of(entry.handle);
  Popped popped{entry.time, std::move(slots_[slot].callback)};
  retire_slot(slot);
  --live_;
  return popped;
}

}  // namespace wrht::sim
