// Optional event tracing.  A network model records (time, kind, subject)
// triples; tests assert on them and the schedule explorer example prints
// them.  Tracing is off unless a sink is installed, and recording into a
// disabled trace is a no-op with no allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace wrht::sim {

enum class TraceKind : std::uint8_t {
  kStepBegin,
  kStepEnd,
  kTransferBegin,
  kTransferEnd,
  kTune,
  kFlowBegin,
  kFlowEnd,
  kJobAdmit,
  kJobComplete,
  kJobPreempt,
  kJobResume,
  kJobResize,
  /// Hybrid placement verdicts: which substrate an admitted job landed on.
  /// Recorded alongside kJobAdmit so one trace tells both timing stories.
  kJobPlaceOptical,
  kJobPlaceElectrical,
  /// A cost-model routing verdict, recorded when the decision binds (the
  /// job is placed).  `a` is the job, `b` the chosen substrate
  /// (SubstrateKind as int); the detail carries BOTH predicted completion
  /// times, so routing errors are auditable post-hoc against the job's
  /// actual completion.
  kRouteDecision,
  /// A running step's completion event moved on the sim clock because
  /// another tenant's flows changed the shared-fabric contention.  `a` is
  /// the execution's lead job, `b` the step index; the detail carries the
  /// new absolute end time.
  kStepRetimed,
  /// The Batcher fused a queued job into another execution's schedule.  `a`
  /// is the fused peer, `b` the batch's lead job — without this event a
  /// fused-batch timeline misattributes the whole payload to the lead.
  kJobFused,
  /// A fault took hardware out of service.  `a` is the failed subject
  /// (node/host id, or ToR id), `b` the FaultDomain as int; the detail
  /// names the domain.
  kNodeFail,
  /// A wavelength degraded out of service.  `a` is the wavelength index.
  kWavelengthDegrade,
  /// A fault healed and its subject returned to service.  `a`/`b` mirror
  /// the injection event.
  kFaultRepair,
  /// A ToR fault migrated a job across substrates mid-run.  `a` is the
  /// job, `b` the landing band base (or -1 for a host landing); the detail
  /// carries "width=N" like every other band-claiming event.
  kJobMigrate,
  /// Faults shrank a job's participant set below the minimum; the job is
  /// dead (JobState::kFailed).  `a` is the job.
  kJobKilled,
  kCustom,
};

/// Number of TraceKind values.  trace.cpp static_asserts this against the
/// enum (via kCustom being last), and the exhaustiveness test in
/// test_sim_trace walks every kind through trace_kind_name — so a new kind
/// cannot silently render as "?".
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kCustom) + 1;

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  util::Seconds time;
  TraceKind kind;
  // Meaning depends on kind: step index, transfer id, node id...
  std::int64_t a = -1;
  std::int64_t b = -1;
  std::string detail;
};

class Trace {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(util::Seconds time, TraceKind kind, std::int64_t a = -1,
              std::int64_t b = -1, std::string detail = {});

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

  /// One line per event, "t=12.5us transfer_begin a=3 b=7 (detail)".
  [[nodiscard]] std::string to_string() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace wrht::sim
