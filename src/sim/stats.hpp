// Lightweight statistics used by the simulators: counters, running summaries,
// and fixed-bucket histograms.  Everything is plain value-semantics so a
// network model can embed them freely.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wrht::sim {

/// Monotone event counter.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Streaming min/max/mean/variance (Welford).
class Summary {
 public:
  void record(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double total() const { return total_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with exponentially-spaced bucket boundaries starting at
/// `first_bound` and growing by `growth` per bucket.
class Histogram {
 public:
  Histogram(double first_bound, double growth, std::size_t num_buckets);

  void record(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }
  /// Upper bound of bucket i (the last bucket is unbounded).
  [[nodiscard]] double bucket_bound(std::size_t i) const { return bounds_[i]; }
  /// Smallest recorded value x such that at least `quantile` of the mass is
  /// <= bucket containing x (bucket upper bound; coarse but monotone).
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
};

}  // namespace wrht::sim
