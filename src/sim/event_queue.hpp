// Priority queue of timestamped events with deterministic tie-breaking.
//
// Two events at the same simulated time fire in insertion order (FIFO), which
// makes every simulation in this repository bit-reproducible regardless of
// heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace wrht::sim {

using EventCallback = std::function<void()>;

class EventQueue {
 public:
  /// Enqueue `callback` to fire at absolute time `when`.
  /// Returns a handle usable with `cancel`.
  std::uint64_t push(util::Seconds when, EventCallback callback);

  /// Mark an event as cancelled.  Cancelled events are skipped on pop.
  /// Returns false if the handle was already popped or cancelled.
  bool cancel(std::uint64_t handle);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Requires !empty().
  [[nodiscard]] util::Seconds next_time() const;

  struct Popped {
    util::Seconds time;
    EventCallback callback;
  };
  /// Remove and return the earliest live event.  Requires !empty().
  Popped pop();

 private:
  struct Entry {
    util::Seconds time;
    std::uint64_t sequence;
    // Shared index into callbacks_ storage; the heap entry stays lightweight.
    std::uint64_t handle;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.sequence < a.sequence;
    }
  };

  void drop_dead_entries() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<EventCallback> callbacks_;  // indexed by handle
  std::vector<bool> cancelled_;
  std::uint64_t next_sequence_ = 0;
  std::size_t live_ = 0;
};

}  // namespace wrht::sim
