// Priority queue of timestamped events with deterministic tie-breaking.
//
// Two events at the same simulated time fire in insertion order (FIFO), which
// makes every simulation in this repository bit-reproducible regardless of
// heap internals.
//
// The queue is built for million-event runs: callbacks live in recycled
// slots (generation-checked handles, so a stale handle can never alias a
// reused slot), the callback type stores small captures inline instead of
// allocating, and lazily-cancelled heap entries are compacted once they
// outnumber the live ones.  `set_recycling(false)` restores the original
// append-only behaviour (slots and dead heap entries grow without bound)
// so benchmarks can measure the naive path against the flat one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace wrht::sim {

/// Move-only callable of signature void().  Captures up to kInlineBytes are
/// stored inline; larger ones fall back to a single heap allocation.  The
/// inline budget is sized for the runtime's event lambdas (a `this` pointer
/// plus a shared_ptr or a couple of ids), which is what keeps a million-push
/// run allocation-quiet.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* obj) { (*static_cast<Fn*>(obj))(); };
      manage_ = [](Action action, void* self, void* dest) {
        auto* fn_self = static_cast<Fn*>(self);
        if (action == Action::kMoveTo) {
          ::new (dest) Fn(std::move(*fn_self));
        }
        fn_self->~Fn();
      };
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](void* obj) { (**static_cast<Fn**>(obj))(); };
      manage_ = [](Action action, void* self, void* dest) {
        auto* fn_self = static_cast<Fn**>(self);
        if (action == Action::kMoveTo) {
          ::new (dest) Fn*(*fn_self);
        } else {
          delete *fn_self;
        }
      };
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  enum class Action { kMoveTo, kDestroy };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Action, void* self, void* dest);

  void move_from(EventCallback& other) noexcept {
    if (!other.invoke_) return;
    other.manage_(Action::kMoveTo, other.storage_, storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void reset() noexcept {
    if (invoke_) {
      manage_(Action::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

class EventQueue {
 public:
  /// Enqueue `callback` to fire at absolute time `when`.
  /// Returns a handle usable with `cancel`.
  std::uint64_t push(util::Seconds when, EventCallback callback);

  /// Mark an event as cancelled.  Cancelled events are skipped on pop.
  /// Returns false if the handle was already popped or cancelled.
  bool cancel(std::uint64_t handle);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Requires !empty().
  [[nodiscard]] util::Seconds next_time() const;

  struct Popped {
    util::Seconds time;
    EventCallback callback;
  };
  /// Remove and return the earliest live event.  Requires !empty().
  Popped pop();

  /// Toggle slot recycling + dead-entry compaction.  On (the default) keeps
  /// memory proportional to the number of *outstanding* events; off
  /// reproduces the historical append-only behaviour where every push grows
  /// the slot table forever and cancelled heap entries linger until popped.
  /// Pop order is identical either way — only memory behaviour differs.
  void set_recycling(bool enabled) { recycling_ = enabled; }

  /// Introspection for memory-flatness tests and benchmarks.
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  [[nodiscard]] std::size_t heap_entry_count() const { return heap_.size(); }

 private:
  struct Slot {
    EventCallback callback;
    std::uint32_t generation = 0;
    bool live = false;
  };
  struct Entry {
    util::Seconds time;
    std::uint64_t sequence;
    // Generation-tagged slot reference; the heap entry stays lightweight.
    std::uint64_t handle;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.sequence < a.sequence;
    }
  };

  static std::uint32_t slot_of(std::uint64_t handle) {
    return static_cast<std::uint32_t>(handle & 0xffffffffULL);
  }
  static std::uint32_t generation_of(std::uint64_t handle) {
    return static_cast<std::uint32_t>(handle >> 32);
  }

  [[nodiscard]] bool entry_dead(const Entry& entry) const;
  void drop_dead_entries() const;
  void retire_slot(std::uint32_t slot);
  void maybe_compact();

  // Max-heap under Later == min on (time, sequence) at front; kept as a raw
  // vector (std::push_heap/pop_heap) so compaction can rebuild it in place.
  mutable std::vector<Entry> heap_;
  mutable std::size_t dead_entries_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // retired slots awaiting reuse
  std::uint64_t next_sequence_ = 0;
  std::size_t live_ = 0;
  bool recycling_ = true;
};

}  // namespace wrht::sim
