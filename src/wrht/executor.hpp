// Runs an annotated schedule on the optical ring DES and bridges its
// functional content back to the coll:: correctness oracle.
#pragma once

#include "optical/network.hpp"
#include "util/units.hpp"
#include "wrht/annotated.hpp"

namespace wrht::core {

/// Convert one annotated step into the DES transfer list for `payload`.
[[nodiscard]] std::vector<optical::TimedTransfer> timed_step(
    const AnnotatedSchedule& annotated, std::size_t step,
    util::Bytes payload);

/// Same, shifting every wavelength up by `lambda_offset`.  The multi-tenant
/// runtime builds schedules against a job-local budget [0, w) and relocates
/// them into the spectrum band the arbiter granted.
[[nodiscard]] std::vector<optical::TimedTransfer> timed_step(
    const AnnotatedSchedule& annotated, std::size_t step, util::Bytes payload,
    optical::WavelengthId lambda_offset);

/// Execute the whole schedule on `network` (which must have at least
/// annotated.wavelengths_required wavelengths and the right node count).
/// Returns the network-measured timing.
optical::RunResult run_on_optical(const AnnotatedSchedule& annotated,
                                  optical::OpticalRingNetwork& network,
                                  util::Bytes payload);

/// One-call convenience: build a fresh network from `params` and execute.
optical::RunResult run_on_optical(const AnnotatedSchedule& annotated,
                                  const optical::OpticalParams& params,
                                  util::Bytes payload);

}  // namespace wrht::core
