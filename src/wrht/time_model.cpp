#include "wrht/time_model.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace wrht::core {

util::Seconds analytic_schedule_time(const AnnotatedSchedule& annotated,
                                     util::Bytes payload,
                                     const optical::OpticalParams& params) {
  util::Seconds total{0.0};
  const double bw = params.wdm.wavelength_bandwidth.bytes_per_second();
  for (std::size_t s = 0; s < annotated.schedule.num_steps(); ++s) {
    const coll::Step& step = annotated.schedule.steps()[s];
    double slowest = 0.0;
    for (std::size_t i = 0; i < step.transfers.size(); ++i) {
      const coll::Transfer& t = step.transfers[i];
      const PathAssignment& path = annotated.paths[s][i];
      const double bytes =
          annotated.schedule.chunk_bytes(payload, t.chunk).as_double();
      const double stripes = static_cast<double>(path.lambdas.size());
      const double duration =
          params.tune_time.value() + params.transceiver_time.value() +
          params.propagation_per_hop.value() *
              static_cast<double>(path.arc.length) +
          bytes / (bw * stripes);
      slowest = std::max(slowest, duration);
    }
    total += util::Seconds(slowest) + params.sync_time;
  }
  return total;
}

util::Seconds wrht_time_formula(std::uint32_t num_nodes, util::Bytes payload,
                                const optical::OpticalParams& p,
                                const WrhtParams& params) {
  const std::uint32_t m = params.forced_group_size.value_or(
      default_group_size(num_nodes, params.num_wavelengths));
  const double overhead = p.fixed_step_overhead().value();
  const double serialization =
      payload.as_double() / p.wdm.wavelength_bandwidth.bytes_per_second();

  // Walk the level structure the builder would produce, tracking the node
  // spacing so propagation uses the true worst-case hop distance.
  double total = 0.0;
  std::uint32_t active = num_nodes;
  std::uint64_t spacing = 1;  // ring hops between consecutive active nodes
  std::uint32_t tree_levels = 0;
  bool merged = false;
  while (active > 1) {
    if (params.allow_all_to_all_merge &&
        all_to_all_wavelength_bound(active) <= params.num_wavelengths) {
      // All-to-all among `active` nodes spaced `spacing` apart: the longest
      // shortest-direction arc is about half the populated circumference.
      const double hops = static_cast<double>(
          std::min<std::uint64_t>(num_nodes / 2,
                                  spacing * active / 2 + spacing));
      total += overhead + serialization +
               p.propagation_per_hop.value() * hops;
      merged = true;
      break;
    }
    // Tree level: the farthest member sits floor(m/2) active slots from the
    // representative, each slot `spacing` ring hops wide.
    const std::uint32_t group = std::min(active, m);
    const double hops =
        static_cast<double>(spacing * (group / 2));
    total +=
        overhead + serialization + p.propagation_per_hop.value() * hops;
    active = static_cast<std::uint32_t>(util::ceil_div(active, m));
    spacing *= m;
    ++tree_levels;
  }

  // Broadcast mirrors the tree levels; recompute their per-level costs by
  // replaying the same walk (identical transfers, reversed direction).
  active = num_nodes;
  spacing = 1;
  for (std::uint32_t level = 0; level < tree_levels; ++level) {
    const std::uint32_t group = std::min(active, m);
    const double hops = static_cast<double>(spacing * (group / 2));
    total +=
        overhead + serialization + p.propagation_per_hop.value() * hops;
    active = static_cast<std::uint32_t>(util::ceil_div(active, m));
    spacing *= m;
  }
  (void)merged;
  return util::Seconds(total);
}

util::Seconds optical_ring_time_formula(std::uint32_t num_nodes,
                                        util::Bytes payload,
                                        const optical::OpticalParams& p) {
  const double steps = 2.0 * (num_nodes - 1);
  // The largest chunk is ceil(D / N) bytes; every step moves one chunk one
  // hop on a single wavelength.
  const double chunk = static_cast<double>(
      util::ceil_div(payload.count(), num_nodes));
  const double per_step =
      p.fixed_step_overhead().value() + p.propagation_per_hop.value() +
      chunk / p.wdm.wavelength_bandwidth.bytes_per_second();
  return util::Seconds(steps * per_step);
}

}  // namespace wrht::core
