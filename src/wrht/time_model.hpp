// Closed-form communication-time models for the optical ring.
//
// `analytic_schedule_time` mirrors OpticalRingNetwork exactly (the DES and
// the formula must agree to double precision — a test enforces it); the
// `*_formula` helpers are the paper-style expressions that need no schedule
// object at all, used for large parameter sweeps.
#pragma once

#include <cstdint>

#include "optical/params.hpp"
#include "wrht/annotated.hpp"
#include "wrht/builder.hpp"

namespace wrht::core {

/// Per-step: (tune + transceiver, charged per the retune policy) +
/// max over transfers of (hops * t_prop + bytes / (#lambdas * B)) + sync.
/// Assumes every step retunes (OpticalParams::retune_every_step == true).
[[nodiscard]] util::Seconds analytic_schedule_time(
    const AnnotatedSchedule& annotated, util::Bytes payload,
    const optical::OpticalParams& params);

/// The paper's Wrht time: steps(N, m, w) fixed-overhead charges plus one
/// full-payload serialization per step (every Wrht transfer carries the
/// whole vector on one wavelength).  Propagation uses the exact worst-case
/// hop distance per level.
[[nodiscard]] util::Seconds wrht_time_formula(std::uint32_t num_nodes,
                                              util::Bytes payload,
                                              const optical::OpticalParams& p,
                                              const WrhtParams& params);

/// Chunked ring all-reduce on the optical ring, single wavelength:
/// 2(N-1) steps, each paying the fixed overhead + one chunk (~D/N) + 1 hop.
[[nodiscard]] util::Seconds optical_ring_time_formula(
    std::uint32_t num_nodes, util::Bytes payload,
    const optical::OpticalParams& p);

}  // namespace wrht::core
