#include "wrht/primitives.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace wrht::core {
namespace {

// Truncate a full Wrht build (merge disabled) to its reduce stage.
AnnotatedSchedule take_reduce_stage(const WrhtBuild& full,
                                    const std::string& name) {
  const std::size_t levels = full.reduce_levels.size();
  AnnotatedSchedule out{
      coll::Schedule(name, full.annotated.schedule.num_nodes(), 1),
      {},
      0,
      {}};
  for (std::size_t s = 0; s < levels; ++s) {
    out.schedule.add_step();
    for (const coll::Transfer& t :
         full.annotated.schedule.steps()[s].transfers) {
      out.schedule.add_transfer(t);
    }
    out.paths.push_back(full.annotated.paths[s]);
    out.lambda_per_step.push_back(full.annotated.lambda_per_step[s]);
    out.wavelengths_required =
        std::max(out.wavelengths_required, full.annotated.lambda_per_step[s]);
  }
  return out;
}

}  // namespace

WrhtReduceBuild build_wrht_reduce(std::uint32_t num_nodes,
                                  const WrhtParams& params) {
  WrhtParams no_merge = params;
  no_merge.allow_all_to_all_merge = false;
  WrhtBuild full = build_wrht(num_nodes, no_merge);
  WRHT_CHECK(!full.reduce_levels.empty() &&
                 full.reduce_levels.back().groups.size() == 1,
             "build_wrht_reduce: tree did not converge to one root");
  WrhtReduceBuild build{take_reduce_stage(full, "wrht_reduce"),
                        full.reduce_levels.back().groups[0].rep(),
                        full.group_size_m,
                        std::move(full.reduce_levels)};
  return build;
}

WrhtBroadcastBuild build_wrht_broadcast(std::uint32_t num_nodes,
                                        topo::NodeId root,
                                        const WrhtParams& params) {
  // Build the tree on logical ring positions, then rotate the whole
  // schedule so the tree's root lands on the requested physical node.  A
  // rotation maps arcs to arcs and preserves every span overlap, so the
  // wavelength assignment carries over unchanged.
  WrhtParams no_merge = params;
  no_merge.allow_all_to_all_merge = false;
  const WrhtBuild full = build_wrht(num_nodes, no_merge);
  const topo::NodeId logical_root =
      full.reduce_levels.back().groups[0].rep();
  const std::uint32_t shift =
      (root + num_nodes - logical_root) % num_nodes;
  const auto physical = [&](topo::NodeId logical) {
    return (logical + shift) % num_nodes;
  };

  WrhtBroadcastBuild build{
      AnnotatedSchedule{coll::Schedule("wrht_broadcast", num_nodes, 1),
                        {},
                        0,
                        {}},
      root, full.group_size_m};

  // The broadcast stage of `full` is its second half (levels reversed);
  // rotate ids and arcs, keep wavelengths.
  const std::size_t levels = full.reduce_levels.size();
  for (std::size_t s = levels; s < full.annotated.schedule.num_steps(); ++s) {
    build.annotated.schedule.add_step();
    std::vector<PathAssignment> paths;
    const auto& transfers = full.annotated.schedule.steps()[s].transfers;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const coll::Transfer& t = transfers[i];
      build.annotated.schedule.add_transfer(coll::Transfer{
          physical(t.src), physical(t.dst), t.chunk, t.op});
      PathAssignment path = full.annotated.paths[s][i];
      path.arc.first = (path.arc.first + shift) % num_nodes;
      paths.push_back(std::move(path));
    }
    build.annotated.paths.push_back(std::move(paths));
    build.annotated.lambda_per_step.push_back(
        full.annotated.lambda_per_step[s]);
    build.annotated.wavelengths_required =
        std::max(build.annotated.wavelengths_required,
                 full.annotated.lambda_per_step[s]);
  }
  return build;
}

}  // namespace wrht::core
