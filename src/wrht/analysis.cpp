#include "wrht/analysis.hpp"

#include <algorithm>

#include "util/math.hpp"

namespace wrht::core {

WrhtAnalysis analyze(const WrhtBuild& build, util::Bytes probe_payload) {
  WrhtAnalysis a;
  a.num_nodes = build.annotated.schedule.num_nodes();
  a.group_size_m = build.group_size_m;
  a.final_rep_count_mstar = build.final_rep_count_mstar;
  a.merged_with_all_to_all = build.merged_with_all_to_all;
  a.tree_levels = static_cast<std::uint32_t>(build.reduce_levels.size());
  a.total_steps =
      static_cast<std::uint32_t>(build.annotated.schedule.num_steps());
  const std::uint32_t log_term =
      util::ceil_log(build.group_size_m, a.num_nodes);
  a.paper_formula_steps =
      2 * log_term - (build.merged_with_all_to_all ? 1 : 0);
  a.ring_steps = 2 * (a.num_nodes - 1);
  a.lambda_per_step = build.annotated.lambda_per_step;
  a.max_lambda = build.annotated.wavelengths_required;
  a.group_lambda_bound = build.group_size_m / 2;
  a.all_to_all_lambda_bound =
      build.merged_with_all_to_all
          ? all_to_all_wavelength_bound(build.final_rep_count_mstar)
          : 0;
  a.probe_payload = probe_payload;
  a.total_traffic = build.annotated.schedule.total_traffic(probe_payload);
  return a;
}

std::string WrhtAnalysis::report() const {
  std::string out;
  out += "Wrht schedule for N=" + std::to_string(num_nodes) + "\n";
  out += "  group size m        : " + std::to_string(group_size_m) + "\n";
  out += "  tree levels         : " + std::to_string(tree_levels) + "\n";
  out += "  final reps (m*)     : " + std::to_string(final_rep_count_mstar) +
         (merged_with_all_to_all ? "  (merged via all-to-all)\n"
                                 : "  (reduced to root)\n");
  out += "  steps               : " + std::to_string(total_steps) +
         "  (paper formula: " + std::to_string(paper_formula_steps) +
         ", ring: " + std::to_string(ring_steps) + ")\n";
  out += "  wavelengths         : " + std::to_string(max_lambda) +
         "  (group bound floor(m/2)=" + std::to_string(group_lambda_bound);
  if (merged_with_all_to_all) {
    out += ", all-to-all bound ceil(m*^2/8)=" +
           std::to_string(all_to_all_lambda_bound);
  }
  out += ")\n";
  out += "  lambdas per step    :";
  for (const std::uint32_t l : lambda_per_step) {
    out += " " + std::to_string(l);
  }
  out += "\n";
  out += "  traffic @" + util::to_string(probe_payload) + "  : " +
         util::to_string(total_traffic) + "\n";
  return out;
}

}  // namespace wrht::core
