#include "wrht/striping.hpp"

#include <algorithm>

#include "optical/spectrum.hpp"

namespace wrht::core {

AnnotatedSchedule apply_striping(const AnnotatedSchedule& annotated,
                                 std::uint32_t num_wavelengths,
                                 util::Bytes payload, StripingStats* stats) {
  AnnotatedSchedule out = annotated;
  const topo::RingTopology ring(annotated.schedule.num_nodes());

  for (std::size_t s = 0; s < out.schedule.num_steps(); ++s) {
    std::vector<PathAssignment>& paths = out.paths[s];
    const coll::Step& step = out.schedule.steps()[s];

    // Rebuild this step's spectrum occupancy from the base assignment.
    optical::SpectrumMap spectrum(ring, num_wavelengths);
    for (const PathAssignment& p : paths) {
      for (const optical::WavelengthId lambda : p.lambdas) {
        spectrum.reserve(p.arc, lambda);
      }
    }

    // Serialization time of transfer i with its current stripe count.
    const auto duration = [&](std::size_t i) {
      const double bytes =
          out.schedule.chunk_bytes(payload, step.transfers[i].chunk)
              .as_double();
      return bytes / static_cast<double>(paths[i].lambdas.size());
    };

    // Greedy: always relieve the current bottleneck transfer; stop when the
    // bottleneck has no free wavelength along its arc (any slower transfer
    // would not change the makespan anyway, but relieving non-bottlenecks
    // still helps total occupancy, so we fall through the sorted order).
    std::vector<std::size_t> order(paths.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    bool progress = true;
    while (progress) {
      progress = false;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return duration(a) > duration(b);
                       });
      for (const std::size_t i : order) {
        const std::optional<optical::WavelengthId> lambda =
            spectrum.first_free(paths[i].arc);
        if (!lambda.has_value()) continue;
        spectrum.reserve(paths[i].arc, *lambda);
        paths[i].lambdas.push_back(*lambda);
        out.wavelengths_required =
            std::max(out.wavelengths_required, *lambda + 1);
        if (stats != nullptr) {
          ++stats->extra_lambdas_granted;
          stats->max_stripes_on_one_transfer =
              std::max(stats->max_stripes_on_one_transfer,
                       static_cast<std::uint32_t>(paths[i].lambdas.size()));
        }
        progress = true;
        break;  // re-rank after each grant
      }
    }
    if (!paths.empty()) {
      std::uint32_t used = out.lambda_per_step[s];
      for (const PathAssignment& p : paths) {
        for (const optical::WavelengthId lambda : p.lambdas) {
          used = std::max(used, lambda + 1);
        }
      }
      out.lambda_per_step[s] = used;
    }
  }
  return out;
}

}  // namespace wrht::core
