#include "wrht/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include "util/check.hpp"
#include <numeric>

#include "util/math.hpp"

namespace wrht::core {
namespace {

// One (stage, transfer) template: the pipeline instantiates it once per
// segment with the segment id as the chunk.
struct StageTransfer {
  coll::Transfer transfer;  // chunk filled in per segment
  topo::Arc arc;
};
using Stage = std::vector<StageTransfer>;

// Build the 2L stage templates (reduce levels bottom-up, then broadcast
// levels top-down) for group size m.
std::vector<Stage> build_stages(const topo::RingTopology& ring,
                                std::uint32_t num_nodes, std::uint32_t m) {
  std::vector<std::vector<Group>> levels;
  std::vector<topo::NodeId> active(num_nodes);
  std::iota(active.begin(), active.end(), 0);
  while (active.size() > 1) {
    std::vector<Group> groups = partition_into_groups(active, m);
    std::vector<topo::NodeId> reps;
    reps.reserve(groups.size());
    for (const Group& group : groups) reps.push_back(group.rep());
    levels.push_back(std::move(groups));
    active = std::move(reps);
  }

  std::vector<Stage> stages;
  for (const std::vector<Group>& level : levels) {
    Stage stage;
    for (const Group& group : level) {
      for (const topo::NodeId member : group.members) {
        if (member == group.rep()) continue;
        stage.push_back(StageTransfer{
            coll::Transfer{member, group.rep(), 0, coll::TransferOp::kReduce},
            intra_group_arc(ring, member, group.rep())});
      }
    }
    stages.push_back(std::move(stage));
  }
  for (auto level = levels.rbegin(); level != levels.rend(); ++level) {
    Stage stage;
    for (const Group& group : *level) {
      for (const topo::NodeId member : group.members) {
        if (member == group.rep()) continue;
        stage.push_back(StageTransfer{
            coll::Transfer{group.rep(), member, 0, coll::TransferOp::kCopy},
            intra_group_arc(ring, group.rep(), member)});
      }
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

// Try to realize the pipeline for a fixed m; nullopt if some step does not
// color within the spectrum.
std::optional<WrhtPipelineBuild> try_build(std::uint32_t num_nodes,
                                           std::uint32_t m,
                                           const WrhtPipelineParams& params) {
  const topo::RingTopology ring(num_nodes);
  const std::vector<Stage> stages = build_stages(ring, num_nodes, m);
  const auto num_stages = static_cast<std::uint32_t>(stages.size());
  const std::uint32_t segments = params.num_segments;

  WrhtPipelineBuild build{
      AnnotatedSchedule{
          coll::Schedule("wrht_pipelined", num_nodes, segments), {}, 0, {}},
      m, num_stages / 2, segments};

  const std::uint32_t total_steps = num_stages + segments - 1;
  for (std::uint32_t t = 0; t < total_steps; ++t) {
    std::vector<coll::Transfer> transfers;
    std::vector<topo::Arc> arcs;
    const std::uint32_t k_begin = t >= segments - 1 ? t - (segments - 1) : 0;
    const std::uint32_t k_end = std::min(num_stages - 1, t);
    for (std::uint32_t k = k_begin; k <= k_end; ++k) {
      const std::uint32_t segment = t - k;
      for (const StageTransfer& st : stages[k]) {
        coll::Transfer transfer = st.transfer;
        transfer.chunk = segment;
        transfers.push_back(transfer);
        arcs.push_back(st.arc);
      }
    }

    const optical::AssignmentResult assignment =
        optical::assign_wavelengths_longest_first(
            ring, arcs, params.num_wavelengths, params.fit_policy);
    if (!assignment.ok) return std::nullopt;

    build.annotated.schedule.add_step();
    std::vector<PathAssignment> paths;
    paths.reserve(arcs.size());
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      build.annotated.schedule.add_transfer(transfers[i]);
      paths.push_back(PathAssignment{arcs[i], {assignment.lambda[i]}});
    }
    build.annotated.paths.push_back(std::move(paths));
    build.annotated.lambda_per_step.push_back(assignment.wavelengths_used);
    build.annotated.wavelengths_required = std::max(
        build.annotated.wavelengths_required, assignment.wavelengths_used);
  }
  return build;
}

}  // namespace

WrhtPipelineBuild build_wrht_pipelined(std::uint32_t num_nodes,
                                       const WrhtPipelineParams& params) {
  WRHT_REQUIRE(num_nodes >= 2 && params.num_segments > 0 &&
                   params.num_wavelengths > 0,
               "build_wrht_pipelined: invalid parameters (N="
                   << num_nodes << ", segments=" << params.num_segments
                   << ", wavelengths=" << params.num_wavelengths << ")");
  const std::uint32_t initial_m = params.initial_group_size.value_or(
      std::max(2u, std::min(num_nodes, 2 * params.num_wavelengths + 1)));

  // Two degradation axes: shallower groups halve the per-level wavelength
  // demand (more levels, same concurrency), and fewer segments shrink the
  // window of co-active stages.  S = 1 with small m is always feasible
  // (one stage active per step, demand floor(m/2) <= w), so this
  // terminates with a valid schedule.
  WrhtPipelineParams attempt = params;
  while (true) {
    std::uint32_t m = initial_m;
    while (true) {
      const std::optional<WrhtPipelineBuild> build =
          try_build(num_nodes, m, attempt);
      if (build.has_value()) return *build;
      if (m <= 2) break;
      m = std::max(2u, m / 2);
    }
    WRHT_REQUIRE(attempt.num_segments != 1,
                 "build_wrht_pipelined: N=" << num_nodes
                                            << " does not fit in "
                                            << params.num_wavelengths
                                            << " wavelengths even unpipelined "
                                               "at m=2");
    attempt.num_segments = std::max(1u, attempt.num_segments / 2);
  }
}

std::uint32_t optimal_segments(std::uint32_t num_nodes,
                               std::uint32_t group_size, util::Bytes payload,
                               const optical::OpticalParams& p) {
  const double levels = util::ceil_log(group_size, num_nodes);
  const double overhead = p.fixed_step_overhead().value();
  const double serialization =
      payload.as_double() / p.wdm.wavelength_bandwidth.bytes_per_second();
  const double s_star =
      std::sqrt(std::max(1.0, (2 * levels - 1) * serialization / overhead));
  return static_cast<std::uint32_t>(
      std::clamp(std::round(s_star), 1.0, 4096.0));
}

}  // namespace wrht::core
