// Post-hoc analysis of a Wrht build: the quantities §2 of the paper derives
// (step counts, wavelength demand, m*), plus traffic accounting and the
// comparison against the ring's 2(N-1) steps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"
#include "wrht/builder.hpp"

namespace wrht::core {

struct WrhtAnalysis {
  std::uint32_t num_nodes = 0;
  std::uint32_t group_size_m = 0;
  std::uint32_t final_rep_count_mstar = 0;
  bool merged_with_all_to_all = false;
  std::uint32_t tree_levels = 0;
  std::uint32_t total_steps = 0;
  /// The paper's formula value 2*ceil(log_m N) (minus 1 when merged).
  std::uint32_t paper_formula_steps = 0;
  /// Ring all-reduce step count 2(N-1) for comparison.
  std::uint32_t ring_steps = 0;
  std::vector<std::uint32_t> lambda_per_step;
  std::uint32_t max_lambda = 0;
  /// floor(m/2): the per-group wavelength bound of §2.
  std::uint32_t group_lambda_bound = 0;
  /// ceil(m*^2 / 8): the all-to-all wavelength bound of §2.
  std::uint32_t all_to_all_lambda_bound = 0;
  util::Bytes total_traffic;  // for the probe payload below
  util::Bytes probe_payload;

  [[nodiscard]] std::string report() const;
};

[[nodiscard]] WrhtAnalysis analyze(const WrhtBuild& build,
                                   util::Bytes probe_payload);

}  // namespace wrht::core
