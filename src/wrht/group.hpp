// Group partitioning for the Wrht hierarchical tree.
//
// Active nodes (listed in ascending ring position) are cut into runs of m
// consecutive nodes; the *middle* member of each run is its representative.
// With the middle choice, a group of size g needs max(#left, #right) =
// floor(g/2) wavelengths for its intra-group transfers — the bound §2 of the
// paper states — because the two sides of the representative use the two
// counter-rotating waveguides and each side's paths all share the span next
// to the representative.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/ring.hpp"

namespace wrht::core {

struct Group {
  /// Ascending ring positions; never wraps (partitioning starts at the
  /// lowest active node).
  std::vector<topo::NodeId> members;
  std::size_t rep_index = 0;

  [[nodiscard]] topo::NodeId rep() const { return members[rep_index]; }
  [[nodiscard]] std::size_t size() const { return members.size(); }
  /// Members strictly below the representative in ring position.
  [[nodiscard]] std::size_t left_count() const { return rep_index; }
  /// Members strictly above.
  [[nodiscard]] std::size_t right_count() const {
    return members.size() - rep_index - 1;
  }
};

/// Split `active` (ascending node ids) into ceil(|active| / group_size)
/// consecutive groups; the last group may be smaller.  group_size >= 2.
[[nodiscard]] std::vector<Group> partition_into_groups(
    const std::vector<topo::NodeId>& active, std::uint32_t group_size);

/// Wavelengths this group needs for its gather (or mirrored broadcast) step:
/// max(left, right) = floor(size/2) for the middle representative.
[[nodiscard]] std::uint32_t group_wavelength_demand(const Group& group);

/// Arc for an intra-group transfer.  Members below the representative reach
/// it clockwise (ascending ids), members above counter-clockwise — and the
/// mirrored broadcast reverses both — so the two sides of a group live on
/// the two counter-rotating waveguides and a path never leaves the group's
/// slice of the ring.
[[nodiscard]] topo::Arc intra_group_arc(const topo::RingTopology& ring,
                                        topo::NodeId from, topo::NodeId to);

}  // namespace wrht::core
