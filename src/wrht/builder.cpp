#include "wrht/builder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "util/math.hpp"

namespace wrht::core {
namespace {

struct StepAssembly {
  std::vector<coll::Transfer> transfers;
  std::vector<topo::Arc> arcs;
};

// Assign wavelengths for one assembled step and append it to the schedule.
// Returns the number of wavelengths used; aborts if the step does not fit
// (the builder only assembles steps it has proven feasible).
std::uint32_t commit_step(AnnotatedSchedule& annotated,
                          const topo::RingTopology& ring, StepAssembly step,
                          std::uint32_t max_wavelengths,
                          optical::FitPolicy policy) {
  const optical::AssignmentResult assignment =
      optical::assign_wavelengths_longest_first(ring, step.arcs,
                                                max_wavelengths, policy);
  if (!assignment.ok) {
    std::fprintf(stderr,
                 "build_wrht: internal error — feasible step failed "
                 "wavelength assignment (%zu arcs, %u wavelengths)\n",
                 step.arcs.size(), max_wavelengths);
    std::abort();
  }
  annotated.schedule.add_step();
  std::vector<PathAssignment> paths;
  paths.reserve(step.arcs.size());
  for (std::size_t i = 0; i < step.transfers.size(); ++i) {
    annotated.schedule.add_transfer(step.transfers[i]);
    paths.push_back(PathAssignment{step.arcs[i], {assignment.lambda[i]}});
  }
  annotated.paths.push_back(std::move(paths));
  annotated.lambda_per_step.push_back(assignment.wavelengths_used);
  annotated.wavelengths_required =
      std::max(annotated.wavelengths_required, assignment.wavelengths_used);
  return assignment.wavelengths_used;
}

// Assemble the all-to-all exchange among `active` nodes (direction-balanced
// routing, per the Liang & Shen bound) and test whether it colors within
// `max_wavelengths`.
std::optional<StepAssembly> try_all_to_all(const topo::RingTopology& ring,
                                           const std::vector<topo::NodeId>& active,
                                           std::uint32_t max_wavelengths,
                                           optical::FitPolicy policy) {
  StepAssembly step;
  for (const topo::NodeId i : active) {
    for (const topo::NodeId j : active) {
      if (i == j) continue;
      step.transfers.push_back(
          coll::Transfer{i, j, 0, coll::TransferOp::kReduce});
    }
  }
  step.arcs = optical::balanced_all_to_all_arcs(ring, active);
  const optical::AssignmentResult probe =
      optical::assign_wavelengths_longest_first(ring, step.arcs,
                                                max_wavelengths, policy);
  if (!probe.ok) return std::nullopt;
  return step;
}

}  // namespace

std::uint32_t default_group_size(std::uint32_t num_nodes,
                                 std::uint32_t num_wavelengths) {
  // floor(m/2) <= w  <=>  m <= 2w + 1; never larger than the node count and
  // never below the minimum useful group of 2.
  const std::uint32_t cap = 2 * num_wavelengths + 1;
  return std::max(2u, std::min(num_nodes, cap));
}

std::uint32_t all_to_all_wavelength_bound(std::uint32_t k) {
  return static_cast<std::uint32_t>(
      util::ceil_div(std::uint64_t{k} * k, 8));
}

bool all_to_all_merge_fits(const topo::RingTopology& ring,
                           const std::vector<topo::NodeId>& active,
                           std::uint32_t num_wavelengths,
                           optical::FitPolicy policy) {
  const std::vector<topo::Arc> arcs =
      optical::balanced_all_to_all_arcs(ring, active);
  return optical::assign_wavelengths_longest_first(ring, arcs,
                                                   num_wavelengths, policy)
      .ok;
}

std::uint32_t predicted_steps(std::uint32_t num_nodes,
                              std::uint32_t group_size,
                              std::uint32_t num_wavelengths,
                              bool allow_merge) {
  if (num_nodes < 2 || group_size < 2) {
    std::fprintf(stderr, "predicted_steps: need N >= 2, m >= 2\n");
    std::abort();
  }
  const topo::RingTopology ring(num_nodes);
  std::vector<topo::NodeId> active(num_nodes);
  std::iota(active.begin(), active.end(), 0);
  std::uint32_t tree_levels = 0;
  while (active.size() > 1) {
    if (allow_merge &&
        all_to_all_wavelength_bound(
            static_cast<std::uint32_t>(active.size())) <= num_wavelengths &&
        all_to_all_merge_fits(ring, active, num_wavelengths,
                              optical::FitPolicy::kFirstFit)) {
      return 2 * tree_levels + 1;  // merge: levels + all-to-all + levels
    }
    std::vector<topo::NodeId> reps;
    for (const Group& group : partition_into_groups(active, group_size)) {
      reps.push_back(group.rep());
    }
    active = std::move(reps);
    ++tree_levels;
  }
  return 2 * tree_levels;  // reduce to root + mirrored broadcast
}

WrhtBuild build_wrht_among(const std::vector<topo::NodeId>& participants,
                           std::uint32_t ring_size, const WrhtParams& params) {
  if (participants.size() < 2) {
    std::fprintf(stderr, "build_wrht: need at least 2 participants\n");
    std::abort();
  }
  if (!std::is_sorted(participants.begin(), participants.end()) ||
      std::adjacent_find(participants.begin(), participants.end()) !=
          participants.end() ||
      participants.back() >= ring_size) {
    std::fprintf(stderr,
                 "build_wrht: participants must be ascending, unique ring "
                 "positions\n");
    std::abort();
  }
  if (params.num_wavelengths == 0) {
    std::fprintf(stderr, "build_wrht: need at least 1 wavelength\n");
    std::abort();
  }
  const std::uint32_t m = params.forced_group_size.value_or(
      default_group_size(static_cast<std::uint32_t>(participants.size()),
                         params.num_wavelengths));
  if (m < 2) {
    std::fprintf(stderr, "build_wrht: group size must be >= 2\n");
    std::abort();
  }
  if (m / 2 > params.num_wavelengths) {
    std::fprintf(stderr,
                 "build_wrht: group size %u needs floor(m/2)=%u wavelengths "
                 "but only %u available\n",
                 m, m / 2, params.num_wavelengths);
    std::abort();
  }

  const topo::RingTopology ring(ring_size);
  WrhtBuild build{
      AnnotatedSchedule{coll::Schedule("wrht", ring_size, 1), {}, 0, {}},
      {},
      m,
      0,
      false};

  std::vector<topo::NodeId> active = participants;

  // ---- Reduce stage -------------------------------------------------------
  while (active.size() > 1) {
    if (params.allow_all_to_all_merge &&
        all_to_all_wavelength_bound(
            static_cast<std::uint32_t>(active.size())) <=
            params.num_wavelengths) {
      std::optional<StepAssembly> merge = try_all_to_all(
          ring, active, params.num_wavelengths, params.fit_policy);
      if (merge.has_value()) {
        build.final_rep_count_mstar =
            static_cast<std::uint32_t>(active.size());
        commit_step(build.annotated, ring, std::move(*merge),
                    params.num_wavelengths, params.fit_policy);
        build.merged_with_all_to_all = true;
        break;
      }
      // The bound admitted the step but the heuristic coloring did not fit;
      // fall through to another tree level (never wrong, possibly slower).
    }

    WrhtLevel level;
    level.groups = partition_into_groups(active, m);

    StepAssembly step;
    std::vector<topo::NodeId> reps;
    reps.reserve(level.groups.size());
    for (const Group& group : level.groups) {
      const topo::NodeId rep = group.rep();
      reps.push_back(rep);
      for (const topo::NodeId member : group.members) {
        if (member == rep) continue;
        step.transfers.push_back(
            coll::Transfer{member, rep, 0, coll::TransferOp::kReduce});
        step.arcs.push_back(intra_group_arc(ring, member, rep));
      }
    }
    commit_step(build.annotated, ring, std::move(step),
                params.num_wavelengths, params.fit_policy);
    build.reduce_levels.push_back(std::move(level));
    active = std::move(reps);
  }
  if (!build.merged_with_all_to_all) build.final_rep_count_mstar = 1;

  // ---- Broadcast stage ----------------------------------------------------
  // Mirror every tree level top-down; the all-to-all merge step (if any)
  // needs no mirror because it leaves all its participants with the result.
  for (auto level = build.reduce_levels.rbegin();
       level != build.reduce_levels.rend(); ++level) {
    StepAssembly step;
    for (const Group& group : level->groups) {
      const topo::NodeId rep = group.rep();
      for (const topo::NodeId member : group.members) {
        if (member == rep) continue;
        step.transfers.push_back(
            coll::Transfer{rep, member, 0, coll::TransferOp::kCopy});
        step.arcs.push_back(intra_group_arc(ring, rep, member));
      }
    }
    commit_step(build.annotated, ring, std::move(step),
                params.num_wavelengths, params.fit_policy);
  }

  return build;
}

WrhtBuild build_wrht(std::uint32_t num_nodes, const WrhtParams& params) {
  if (num_nodes < 2) {
    std::fprintf(stderr, "build_wrht: need at least 2 nodes\n");
    std::abort();
  }
  std::vector<topo::NodeId> everyone(num_nodes);
  std::iota(everyone.begin(), everyone.end(), 0);
  return build_wrht_among(everyone, num_nodes, params);
}

}  // namespace wrht::core
