#include "wrht/builder.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/math.hpp"

namespace wrht::core {
namespace {

struct StepAssembly {
  std::vector<coll::Transfer> transfers;
  std::vector<topo::Arc> arcs;
};

// Assign wavelengths for one assembled step and append it to the schedule.
// Returns false (leaving the schedule untouched) when the step does not
// color within `max_wavelengths`.
bool try_commit_step(AnnotatedSchedule& annotated,
                     const topo::RingTopology& ring, StepAssembly step,
                     std::uint32_t max_wavelengths,
                     optical::FitPolicy policy) {
  const optical::AssignmentResult assignment =
      optical::assign_wavelengths_longest_first(ring, step.arcs,
                                                max_wavelengths, policy);
  if (!assignment.ok) return false;
  annotated.schedule.add_step();
  std::vector<PathAssignment> paths;
  paths.reserve(step.arcs.size());
  for (std::size_t i = 0; i < step.transfers.size(); ++i) {
    annotated.schedule.add_transfer(step.transfers[i]);
    paths.push_back(PathAssignment{step.arcs[i], {assignment.lambda[i]}});
  }
  annotated.paths.push_back(std::move(paths));
  annotated.lambda_per_step.push_back(assignment.wavelengths_used);
  annotated.wavelengths_required =
      std::max(annotated.wavelengths_required, assignment.wavelengths_used);
  return true;
}

// Aborting flavor for steps the builder has already proven feasible.
void commit_step(AnnotatedSchedule& annotated, const topo::RingTopology& ring,
                 StepAssembly step, std::uint32_t max_wavelengths,
                 optical::FitPolicy policy) {
  const std::size_t arcs = step.arcs.size();
  WRHT_CHECK(try_commit_step(annotated, ring, std::move(step), max_wavelengths,
                             policy),
             "build_wrht: feasible step failed wavelength assignment ("
                 << arcs << " arcs, " << max_wavelengths << " wavelengths)");
}

// The mirrored broadcast step of one tree level: the representative copies
// the result back to its members along the reversed intra-group arcs.
StepAssembly broadcast_step_for_level(const topo::RingTopology& ring,
                                      const WrhtLevel& level) {
  StepAssembly step;
  for (const Group& group : level.groups) {
    const topo::NodeId rep = group.rep();
    for (const topo::NodeId member : group.members) {
      if (member == rep) continue;
      step.transfers.push_back(
          coll::Transfer{rep, member, 0, coll::TransferOp::kCopy});
      step.arcs.push_back(intra_group_arc(ring, rep, member));
    }
  }
  return step;
}

// Assemble the all-to-all exchange among `active` nodes (direction-balanced
// routing, per the Liang & Shen bound) and test whether it colors within
// `max_wavelengths`.
std::optional<StepAssembly> try_all_to_all(const topo::RingTopology& ring,
                                           const std::vector<topo::NodeId>& active,
                                           std::uint32_t max_wavelengths,
                                           optical::FitPolicy policy) {
  StepAssembly step;
  for (const topo::NodeId i : active) {
    for (const topo::NodeId j : active) {
      if (i == j) continue;
      step.transfers.push_back(
          coll::Transfer{i, j, 0, coll::TransferOp::kReduce});
    }
  }
  step.arcs = optical::balanced_all_to_all_arcs(ring, active);
  const optical::AssignmentResult probe =
      optical::assign_wavelengths_longest_first(ring, step.arcs,
                                                max_wavelengths, policy);
  if (!probe.ok) return std::nullopt;
  return step;
}

}  // namespace

std::uint32_t default_group_size(std::uint32_t num_nodes,
                                 std::uint32_t num_wavelengths) {
  // floor(m/2) <= w  <=>  m <= 2w + 1; never larger than the node count and
  // never below the minimum useful group of 2.
  const std::uint32_t cap = 2 * num_wavelengths + 1;
  return std::max(2u, std::min(num_nodes, cap));
}

std::uint32_t all_to_all_wavelength_bound(std::uint32_t k) {
  return static_cast<std::uint32_t>(
      util::ceil_div(std::uint64_t{k} * k, 8));
}

bool all_to_all_merge_fits(const topo::RingTopology& ring,
                           const std::vector<topo::NodeId>& active,
                           std::uint32_t num_wavelengths,
                           optical::FitPolicy policy) {
  const std::vector<topo::Arc> arcs =
      optical::balanced_all_to_all_arcs(ring, active);
  return optical::assign_wavelengths_longest_first(ring, arcs,
                                                   num_wavelengths, policy)
      .ok;
}

std::uint32_t predicted_steps(std::uint32_t num_nodes,
                              std::uint32_t group_size,
                              std::uint32_t num_wavelengths,
                              bool allow_merge) {
  WRHT_REQUIRE(num_nodes >= 2 && group_size >= 2,
               "predicted_steps: need N >= 2, m >= 2; got N=" << num_nodes
                                                              << " m="
                                                              << group_size);
  const topo::RingTopology ring(num_nodes);
  std::vector<topo::NodeId> active(num_nodes);
  std::iota(active.begin(), active.end(), 0);
  std::uint32_t tree_levels = 0;
  while (active.size() > 1) {
    if (allow_merge &&
        all_to_all_wavelength_bound(
            static_cast<std::uint32_t>(active.size())) <= num_wavelengths &&
        all_to_all_merge_fits(ring, active, num_wavelengths,
                              optical::FitPolicy::kFirstFit)) {
      return 2 * tree_levels + 1;  // merge: levels + all-to-all + levels
    }
    std::vector<topo::NodeId> reps;
    for (const Group& group : partition_into_groups(active, group_size)) {
      reps.push_back(group.rep());
    }
    active = std::move(reps);
    ++tree_levels;
  }
  return 2 * tree_levels;  // reduce to root + mirrored broadcast
}

WrhtBuild build_wrht_among(const std::vector<topo::NodeId>& participants,
                           std::uint32_t ring_size, const WrhtParams& params) {
  WRHT_REQUIRE(participants.size() >= 2,
               "build_wrht: need at least 2 participants, got "
                   << participants.size());
  WRHT_REQUIRE(std::is_sorted(participants.begin(), participants.end()) &&
                   std::adjacent_find(participants.begin(),
                                      participants.end()) ==
                       participants.end() &&
               participants.back() < ring_size,
               "build_wrht: participants must be ascending, unique ring "
               "positions below ring size "
                   << ring_size);
  WRHT_REQUIRE(params.num_wavelengths > 0,
               "build_wrht: need at least 1 wavelength");
  const std::uint32_t m = params.forced_group_size.value_or(
      default_group_size(static_cast<std::uint32_t>(participants.size()),
                         params.num_wavelengths));
  WRHT_REQUIRE(m >= 2, "build_wrht: group size must be >= 2, got " << m);
  WRHT_REQUIRE(m / 2 <= params.num_wavelengths,
               "build_wrht: group size " << m << " needs floor(m/2)=" << m / 2
                                         << " wavelengths but only "
                                         << params.num_wavelengths
                                         << " available");

  const topo::RingTopology ring(ring_size);
  WrhtBuild build;
  build.annotated =
      AnnotatedSchedule{coll::Schedule("wrht", ring_size, 1), {}, 0, {}};
  build.group_size_m = m;

  std::vector<topo::NodeId> active = participants;

  // ---- Reduce stage -------------------------------------------------------
  while (active.size() > 1) {
    if (params.allow_all_to_all_merge &&
        all_to_all_wavelength_bound(
            static_cast<std::uint32_t>(active.size())) <=
            params.num_wavelengths) {
      std::optional<StepAssembly> merge = try_all_to_all(
          ring, active, params.num_wavelengths, params.fit_policy);
      if (merge.has_value()) {
        build.final_rep_count_mstar =
            static_cast<std::uint32_t>(active.size());
        commit_step(build.annotated, ring, std::move(*merge),
                    params.num_wavelengths, params.fit_policy);
        build.merged_with_all_to_all = true;
        break;
      }
      // The bound admitted the step but the heuristic coloring did not fit;
      // fall through to another tree level (never wrong, possibly slower).
    }

    WrhtLevel level;
    level.groups = partition_into_groups(active, m);

    StepAssembly step;
    std::vector<topo::NodeId> reps;
    reps.reserve(level.groups.size());
    for (const Group& group : level.groups) {
      const topo::NodeId rep = group.rep();
      reps.push_back(rep);
      for (const topo::NodeId member : group.members) {
        if (member == rep) continue;
        step.transfers.push_back(
            coll::Transfer{member, rep, 0, coll::TransferOp::kReduce});
        step.arcs.push_back(intra_group_arc(ring, member, rep));
      }
    }
    commit_step(build.annotated, ring, std::move(step),
                params.num_wavelengths, params.fit_policy);
    build.reduce_levels.push_back(std::move(level));
    active = std::move(reps);
  }
  if (!build.merged_with_all_to_all) build.final_rep_count_mstar = 1;

  // ---- Broadcast stage ----------------------------------------------------
  // Mirror every tree level top-down; the all-to-all merge step (if any)
  // needs no mirror because it leaves all its participants with the result.
  for (auto level = build.reduce_levels.rbegin();
       level != build.reduce_levels.rend(); ++level) {
    commit_step(build.annotated, ring, broadcast_step_for_level(ring, *level),
                params.num_wavelengths, params.fit_policy);
    build.broadcast_levels.push_back(*level);
  }

  return build;
}

std::optional<WrhtBuild> rebuild_wrht_remainder(
    const WrhtBuild& build, std::size_t steps_done,
    const std::vector<topo::NodeId>& participants, std::uint32_t ring_size,
    const WrhtParams& params) {
  return rebuild_wrht_remainder_evicting(build, steps_done, participants, {},
                                         ring_size, params);
}

std::optional<WrhtBuild> rebuild_wrht_remainder_evicting(
    const WrhtBuild& build, std::size_t steps_done,
    const std::vector<topo::NodeId>& participants,
    const std::vector<topo::NodeId>& evicted, std::uint32_t ring_size,
    const WrhtParams& params) {
  const std::size_t total_steps = build.annotated.schedule.num_steps();
  WRHT_REQUIRE(steps_done < total_steps,
               "rebuild_wrht_remainder: " << steps_done << " of " << total_steps
                                          << " steps done — nothing left to "
                                             "rebuild");
  WRHT_REQUIRE(params.num_wavelengths > 0,
               "rebuild_wrht_remainder: need >= 1 wavelength");

  const std::size_t num_reduce = build.reduce_levels.size();
  const std::size_t reduce_steps = build.reduce_step_count();
  const topo::RingTopology ring(ring_size);

  // Completed tree levels k, and the mirrors the remainder still owes.  In
  // the reduce stage (k levels done, merge not yet fired) the owed mirrors
  // are the LAST k + inherited entries of broadcast_levels, i.e. everything
  // from index num_reduce - k on; once the broadcast stage started, they are
  // simply the unexecuted tail.
  std::size_t completed_levels = 0;
  std::size_t first_owed_mirror = 0;
  if (steps_done < reduce_steps) {
    completed_levels = std::min(steps_done, num_reduce);
    first_owed_mirror = num_reduce - completed_levels;
  } else {
    completed_levels = num_reduce;
    first_owed_mirror = steps_done - reduce_steps;
  }

  const auto is_evicted = [&evicted](topo::NodeId node) {
    return std::find(evicted.begin(), evicted.end(), node) != evicted.end();
  };

  WrhtBuild out;
  out.annotated =
      AnnotatedSchedule{coll::Schedule("wrht", ring_size, 1), {}, 0, {}};
  out.group_size_m = build.group_size_m;
  out.final_rep_count_mstar = 1;

  if (steps_done < reduce_steps) {
    // Survivors holding partial sums: the reps of the last completed level
    // (the whole participant set when no level completed yet).  The fresh
    // sub-all-reduce among them is sized for the NEW budget, so it may use
    // fewer (wider band) or more (narrower band) levels than the original.
    std::vector<topo::NodeId> active =
        completed_levels == 0 ? participants : std::vector<topo::NodeId>{};
    if (completed_levels != 0) {
      for (const Group& group :
           build.reduce_levels[completed_levels - 1].groups) {
        active.push_back(group.rep());
      }
    }
    // An evicted node still holding a live subtree partial takes those
    // contributions down with it — the remainder cannot complete the sum
    // over all participants, so the caller must restart among survivors.
    for (const topo::NodeId node : active) {
      if (is_evicted(node)) return std::nullopt;
    }
    WrhtParams sub_params = params;
    sub_params.forced_group_size.reset();
    out = build_wrht_among(active, ring_size, sub_params);
  }

  // Recolor the owed mirrors of the original tree for the new budget,
  // stripping evicted nodes from their delivery sets.  Each mirror needs
  // floor(group/2) wavelengths with spatial reuse, so a band narrower than
  // an already-executed level's demand cannot carry them — report that
  // instead of committing a half-usable schedule.
  for (std::size_t i = first_owed_mirror; i < build.broadcast_levels.size();
       ++i) {
    const WrhtLevel& level = build.broadcast_levels[i];
    WrhtLevel kept;
    for (const Group& group : level.groups) {
      if (is_evicted(group.rep())) {
        // A dead representative with surviving members would orphan their
        // delivery; refuse so the caller restarts among survivors.  A group
        // whose membership died entirely is simply dropped.
        for (const topo::NodeId member : group.members) {
          if (!is_evicted(member)) return std::nullopt;
        }
        continue;
      }
      Group survivor_group;
      for (const topo::NodeId member : group.members) {
        if (member != group.rep() && is_evicted(member)) continue;
        if (member == group.rep()) {
          survivor_group.rep_index = survivor_group.members.size();
        }
        survivor_group.members.push_back(member);
      }
      kept.groups.push_back(std::move(survivor_group));
    }
    bool has_transfers = false;
    for (const Group& group : kept.groups) {
      if (group.size() > 1) has_transfers = true;
    }
    if (!has_transfers) continue;  // every recipient of this mirror is gone
    if (!try_commit_step(out.annotated, ring,
                         broadcast_step_for_level(ring, kept),
                         params.num_wavelengths, params.fit_policy)) {
      return std::nullopt;
    }
    out.broadcast_levels.push_back(std::move(kept));
  }
  return out;
}

WrhtBuild build_wrht(std::uint32_t num_nodes, const WrhtParams& params) {
  WRHT_REQUIRE(num_nodes >= 2,
               "build_wrht: need at least 2 nodes, got " << num_nodes);
  std::vector<topo::NodeId> everyone(num_nodes);
  std::iota(everyone.begin(), everyone.end(), 0);
  return build_wrht_among(everyone, num_nodes, params);
}

}  // namespace wrht::core
