// Pipelined Wrht — an extension beyond the paper.
//
// Plain Wrht resends the full vector at every tree level, so for very large
// gradients the bandwidth term (2L-1) * D/B lets chunked rings catch up
// (see bench/msgsize_sweep).  The classic fix is segment pipelining: split
// the payload into S segments and stream them through the tree stages.
// Segment s enters stage k at step k + s; all stages work on different
// segments concurrently, so the schedule finishes in 2L + S - 1 steps of
// size D/S instead of 2L steps of size D:
//
//   T(S) ~ (2L + S - 1) * t_o  +  (2L + S - 1) * D / (S B)
//
// minimized near S* = sqrt((2L - 1) D / (B t_o)).
//
// Concurrent stages share the ring, so the wavelength demand grows to
// roughly the sum of the co-active levels' demands.  The builder degrades
// along two axes until the whole pipeline colors within the spectrum:
// shallower groups (smaller m) reduce per-level demand, and fewer segments
// shrink the co-active window.  S = 1 with m = 2 is always feasible, so the
// search terminates; the result records the segment count actually used.
// Every step remains conflict-checked cell by cell.
#pragma once

#include <cstdint>
#include <optional>

#include "optical/params.hpp"
#include "wrht/annotated.hpp"
#include "wrht/group.hpp"

namespace wrht::core {

struct WrhtPipelineParams {
  std::uint32_t num_wavelengths = 64;
  /// Number of payload segments S (>= 1).  1 degenerates to the unmerged
  /// Wrht schedule.
  std::uint32_t num_segments = 8;
  /// Initial group size; the builder halves it until the pipeline fits the
  /// spectrum.  Defaults to the plain-Wrht choice min(N, 2w+1).
  std::optional<std::uint32_t> initial_group_size;
  optical::FitPolicy fit_policy = optical::FitPolicy::kFirstFit;
};

struct WrhtPipelineBuild {
  AnnotatedSchedule annotated;  // num_chunks == num_segments
  std::uint32_t group_size_m = 0;
  std::uint32_t tree_levels = 0;
  /// Effective segment count (<= the requested one when the spectrum forced
  /// a degradation).
  std::uint32_t num_segments = 0;
};

[[nodiscard]] WrhtPipelineBuild build_wrht_pipelined(
    std::uint32_t num_nodes, const WrhtPipelineParams& params);

/// The analytically optimal segment count for the pipeline trade-off (at
/// least 1, at most 4096), given the tree depth the group size implies.
[[nodiscard]] std::uint32_t optimal_segments(std::uint32_t num_nodes,
                                             std::uint32_t group_size,
                                             util::Bytes payload,
                                             const optical::OpticalParams& p);

}  // namespace wrht::core
