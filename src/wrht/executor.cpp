#include "wrht/executor.hpp"

#include "util/check.hpp"

namespace wrht::core {

std::vector<optical::TimedTransfer> timed_step(
    const AnnotatedSchedule& annotated, std::size_t step,
    util::Bytes payload) {
  return timed_step(annotated, step, payload, 0);
}

std::vector<optical::TimedTransfer> timed_step(
    const AnnotatedSchedule& annotated, std::size_t step, util::Bytes payload,
    optical::WavelengthId lambda_offset) {
  const coll::Step& s = annotated.schedule.steps()[step];
  WRHT_CHECK(annotated.paths[step].size() == s.transfers.size(),
             "timed_step: annotation out of sync at step " << step);
  std::vector<optical::TimedTransfer> out;
  out.reserve(s.transfers.size());
  for (std::size_t i = 0; i < s.transfers.size(); ++i) {
    const coll::Transfer& t = s.transfers[i];
    const PathAssignment& path = annotated.paths[step][i];
    std::vector<optical::WavelengthId> lambdas = path.lambdas;
    for (optical::WavelengthId& lambda : lambdas) lambda += lambda_offset;
    out.push_back(optical::TimedTransfer{
        t.src, t.dst, annotated.schedule.chunk_bytes(payload, t.chunk),
        path.arc, std::move(lambdas)});
  }
  return out;
}

optical::RunResult run_on_optical(const AnnotatedSchedule& annotated,
                                  optical::OpticalRingNetwork& network,
                                  util::Bytes payload) {
  WRHT_REQUIRE(network.ring().num_nodes() == annotated.schedule.num_nodes(),
               "run_on_optical: node count mismatch ("
                   << network.ring().num_nodes() << " vs "
                   << annotated.schedule.num_nodes() << ")");
  WRHT_REQUIRE(network.params().wdm.num_wavelengths >=
                   annotated.wavelengths_required,
               "run_on_optical: schedule needs "
                   << annotated.wavelengths_required
                   << " wavelengths, network has "
                   << network.params().wdm.num_wavelengths);
  std::vector<std::vector<optical::TimedTransfer>> steps;
  steps.reserve(annotated.schedule.num_steps());
  for (std::size_t s = 0; s < annotated.schedule.num_steps(); ++s) {
    steps.push_back(timed_step(annotated, s, payload));
  }
  return network.execute_steps(steps);
}

optical::RunResult run_on_optical(const AnnotatedSchedule& annotated,
                                  const optical::OpticalParams& params,
                                  util::Bytes payload) {
  optical::OpticalRingNetwork network(annotated.schedule.num_nodes(), params);
  return run_on_optical(annotated, network, payload);
}

}  // namespace wrht::core
