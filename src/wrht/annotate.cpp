#include "wrht/annotated.hpp"

#include <algorithm>

namespace wrht::core {

std::optional<AnnotatedSchedule> annotate_on_ring(
    coll::Schedule schedule, const topo::RingTopology& ring,
    std::uint32_t max_wavelengths, optical::FitPolicy policy) {
  AnnotatedSchedule annotated{std::move(schedule), {}, 0, {}};

  for (const coll::Step& step : annotated.schedule.steps()) {
    std::vector<topo::Arc> arcs;
    arcs.reserve(step.transfers.size());
    for (const coll::Transfer& t : step.transfers) {
      arcs.push_back(ring.arc(t.src, t.dst, ring.shortest_direction(t.src, t.dst)));
    }

    const optical::AssignmentResult assignment =
        optical::assign_wavelengths_longest_first(ring, arcs, max_wavelengths,
                                                  policy);
    if (!assignment.ok) return std::nullopt;

    std::vector<PathAssignment> paths;
    paths.reserve(arcs.size());
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      paths.push_back(PathAssignment{arcs[i], {assignment.lambda[i]}});
    }
    annotated.paths.push_back(std::move(paths));
    annotated.lambda_per_step.push_back(assignment.wavelengths_used);
    annotated.wavelengths_required =
        std::max(annotated.wavelengths_required, assignment.wavelengths_used);
  }
  return annotated;
}

}  // namespace wrht::core
