// Wrht-style reduce and broadcast primitives on the optical ring.
//
// The all-reduce of the paper is a reduce stage mirrored by a broadcast
// stage; each half is useful on its own — reduce for gradient aggregation
// to a parameter server node, broadcast for weight distribution.  Both use
// the same hierarchical grouping and wavelength reuse, needing
// ceil(log_m N) steps and floor(m/2) wavelengths.
#pragma once

#include "wrht/builder.hpp"

namespace wrht::core {

/// Hierarchical-tree reduce: the element-wise sum ends at the returned
/// root (the top-level representative).  ceil(log_m N) steps.
struct WrhtReduceBuild {
  AnnotatedSchedule annotated;
  topo::NodeId root = 0;
  std::uint32_t group_size_m = 0;
  std::vector<WrhtLevel> levels;
};
[[nodiscard]] WrhtReduceBuild build_wrht_reduce(std::uint32_t num_nodes,
                                                const WrhtParams& params);

/// Hierarchical-tree broadcast from `root`: every node ends with the root's
/// vector.  ceil(log_m N) steps.  The tree is built over ring positions
/// rotated so that `root` is a top-level representative.
struct WrhtBroadcastBuild {
  AnnotatedSchedule annotated;
  topo::NodeId root = 0;
  std::uint32_t group_size_m = 0;
};
[[nodiscard]] WrhtBroadcastBuild build_wrht_broadcast(std::uint32_t num_nodes,
                                                      topo::NodeId root,
                                                      const WrhtParams& params);

}  // namespace wrht::core
