// A collective schedule annotated with optical routing: every transfer of
// every step carries its ring arc and wavelength set.  This is the object
// the optical DES executes, and the meeting point between the generic
// schedule IR (coll::) and the WDM ring substrate (optical::).
#pragma once

#include <cstdint>
#include <vector>

#include "coll/schedule.hpp"
#include "optical/assign.hpp"
#include "optical/spectrum.hpp"
#include "topo/ring.hpp"

namespace wrht::core {

struct PathAssignment {
  topo::Arc arc;
  /// One wavelength normally; several after striping.
  std::vector<optical::WavelengthId> lambdas;
};

struct AnnotatedSchedule {
  coll::Schedule schedule;
  /// paths[step][i] annotates schedule.steps()[step].transfers[i].
  std::vector<std::vector<PathAssignment>> paths;
  /// Max wavelength index + 1 used in any step.
  std::uint32_t wavelengths_required = 0;
  /// Wavelengths used per step (diagnostics / analysis).
  std::vector<std::uint32_t> lambda_per_step;
};

/// Route an arbitrary schedule onto the optical ring: each transfer takes
/// the shortest-direction arc and gets a wavelength per `policy`, assigned
/// step-locally.  Returns nullopt if some step cannot be colored within
/// `max_wavelengths` (the caller may retry with more wavelengths or another
/// algorithm).
[[nodiscard]] std::optional<AnnotatedSchedule> annotate_on_ring(
    coll::Schedule schedule, const topo::RingTopology& ring,
    std::uint32_t max_wavelengths,
    optical::FitPolicy policy = optical::FitPolicy::kFirstFit);

}  // namespace wrht::core
