#include "wrht/group.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace wrht::core {

std::vector<Group> partition_into_groups(
    const std::vector<topo::NodeId>& active, std::uint32_t group_size) {
  WRHT_REQUIRE(group_size >= 2,
               "partition_into_groups: group_size must be >= 2, got "
                   << group_size);
  WRHT_REQUIRE(std::is_sorted(active.begin(), active.end()),
               "partition_into_groups: active nodes not ascending");

  std::vector<Group> groups;
  for (std::size_t begin = 0; begin < active.size(); begin += group_size) {
    const std::size_t end = std::min(begin + group_size, active.size());
    Group group;
    group.members.assign(active.begin() + static_cast<std::ptrdiff_t>(begin),
                         active.begin() + static_cast<std::ptrdiff_t>(end));
    // Middle member: size/2 puts floor(size/2) members on the left and
    // ceil(size/2)-1 on the right, so the per-side maximum is floor(size/2).
    group.rep_index = group.members.size() / 2;
    groups.push_back(std::move(group));
  }
  return groups;
}

std::uint32_t group_wavelength_demand(const Group& group) {
  return static_cast<std::uint32_t>(
      std::max(group.left_count(), group.right_count()));
}

topo::Arc intra_group_arc(const topo::RingTopology& ring, topo::NodeId from,
                          topo::NodeId to) {
  const topo::Direction dir = from < to ? topo::Direction::kClockwise
                                        : topo::Direction::kCounterClockwise;
  return ring.arc(from, to, dir);
}

}  // namespace wrht::core
