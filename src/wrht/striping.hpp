// Wavelength striping — an extension beyond the paper.
//
// A Wrht step leaves part of the spectrum idle: only the span next to each
// representative is fully loaded; farther spans carry fewer nested paths.
// Striping greedily grants idle wavelengths (free along a transfer's whole
// arc) to the transfers that currently dominate the step makespan, splitting
// their bytes across the granted set.  Bounded by the same conflict rules,
// validated by the same DES.  The striping_ablation bench quantifies the
// benefit.
#pragma once

#include <cstdint>

#include "topo/ring.hpp"
#include "util/units.hpp"
#include "wrht/annotated.hpp"

namespace wrht::core {

struct StripingStats {
  std::uint64_t extra_lambdas_granted = 0;
  std::uint32_t max_stripes_on_one_transfer = 1;
};

/// Returns a copy of `annotated` where each step's transfers may carry
/// multiple wavelengths.  `payload` guides which transfers are on the
/// critical path (larger chunks first).  The result stays conflict-free and
/// uses at most `num_wavelengths` wavelengths.
[[nodiscard]] AnnotatedSchedule apply_striping(const AnnotatedSchedule& annotated,
                                               std::uint32_t num_wavelengths,
                                               util::Bytes payload,
                                               StripingStats* stats = nullptr);

}  // namespace wrht::core
