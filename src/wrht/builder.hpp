// The Wrht schedule builder — the paper's contribution (§2).
//
// Reduce stage: partition the active nodes into groups of m along the ring;
// every member sends its full partial vector to the group's middle
// representative (floor(m/2) wavelengths per group, spatially reused across
// groups and across the two waveguide directions); recurse on the
// representatives.  When the surviving representative count m* is small
// enough that an all-to-all among them fits in the spectrum
// (ceil(m*^2 / 8) <= w, the Liang & Shen bound), the last reduce step is
// that all-to-all, which leaves every representative holding the final
// vector.  Broadcast stage: mirror the tree levels back down with copies.
//
// Step count: 2 * ceil(log_m N) when the tree reduces to a single root
// (all-to-all merge disabled or infeasible), 2 * ceil(log_m N) - 1 when the
// final reduce step is the all-to-all — exactly the paper's formula.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "optical/assign.hpp"
#include "wrht/annotated.hpp"
#include "wrht/group.hpp"

namespace wrht::core {

struct WrhtParams {
  std::uint32_t num_wavelengths = 64;
  /// Override the group size m (default: largest m with floor(m/2) <= w,
  /// i.e. min(N, 2w + 1)).  Must be >= 2.
  std::optional<std::uint32_t> forced_group_size;
  /// Allow the final all-to-all merge step (paper default).  When false the
  /// reduce stage always finishes at a single root.
  bool allow_all_to_all_merge = true;
  optical::FitPolicy fit_policy = optical::FitPolicy::kFirstFit;
};

struct WrhtLevel {
  std::vector<Group> groups;
};

struct WrhtBuild {
  AnnotatedSchedule annotated;
  std::vector<WrhtLevel> reduce_levels;  // tree levels, bottom-up
  /// Broadcast levels in EXECUTION order (one schedule step each, top-down).
  /// A fresh build mirrors reduce_levels in reverse; a remainder rebuilt
  /// mid-flight (rebuild_wrht_remainder) appends the suspended build's
  /// still-owed mirrors after its own, so the step layout invariant
  ///   steps = reduce_levels + (merged ? 1 : 0) + broadcast_levels
  /// holds for every build, original or renegotiated.
  std::vector<WrhtLevel> broadcast_levels;
  std::uint32_t group_size_m = 0;
  /// Representatives alive entering the final reduce step (paper's m*).
  std::uint32_t final_rep_count_mstar = 0;
  bool merged_with_all_to_all = false;

  /// Schedule step index where the broadcast stage starts.
  [[nodiscard]] std::size_t reduce_step_count() const {
    return reduce_levels.size() + (merged_with_all_to_all ? 1 : 0);
  }
};

/// Largest admissible group size for `w` wavelengths: floor(m/2) <= w.
[[nodiscard]] std::uint32_t default_group_size(std::uint32_t num_nodes,
                                               std::uint32_t num_wavelengths);

/// Wavelengths the paper's bound allocates to an all-to-all among k nodes.
[[nodiscard]] std::uint32_t all_to_all_wavelength_bound(std::uint32_t k);

/// The actual merge feasibility test: direction-balanced all-to-all routing
/// among `active` colored within `num_wavelengths`.  The builder merges when
/// both the paper's ceil(k^2/8) gate and this probe pass; the heuristic
/// routing+coloring lands within ~10% of the Liang & Shen bound (see the
/// assignment_ablation bench), so near the gate boundary the probe can
/// reject a merge the idealized formula would allow.
[[nodiscard]] bool all_to_all_merge_fits(const topo::RingTopology& ring,
                                         const std::vector<topo::NodeId>& active,
                                         std::uint32_t num_wavelengths,
                                         optical::FitPolicy policy);

/// Step count for (N, m, w): 2*ceil(log_m N), minus one when the all-to-all
/// merge fires.  Walks the exact level structure (including the routing
/// probe), so it always equals build_wrht's step count.
[[nodiscard]] std::uint32_t predicted_steps(std::uint32_t num_nodes,
                                            std::uint32_t group_size,
                                            std::uint32_t num_wavelengths,
                                            bool allow_merge = true);

/// Build the full Wrht schedule for `num_nodes` nodes.  Aborts on invalid
/// parameters (m < 2); never fails otherwise — the tree step is always
/// realizable within floor(m/2) <= w wavelengths.
[[nodiscard]] WrhtBuild build_wrht(std::uint32_t num_nodes,
                                   const WrhtParams& params);

/// Elastic variant: all-reduce among an arbitrary subset of the ring.
/// `participants` (ascending, unique, >= 2 of them) are the nodes holding
/// gradients; the other ring positions are pass-through (failed, excluded,
/// or busy nodes — their micro-rings stay off-resonance and light crosses
/// them untouched).  The returned schedule's num_nodes() is `ring_size`;
/// non-participants never appear in any transfer.  Group sizes default to
/// min(|participants|, 2w+1).
[[nodiscard]] WrhtBuild build_wrht_among(
    const std::vector<topo::NodeId>& participants, std::uint32_t ring_size,
    const WrhtParams& params);

/// Step-boundary renegotiation seam: rebuild the not-yet-executed remainder
/// of `build` against a (possibly different) wavelength budget.
///
/// `steps_done` schedule steps of `build` have completed (0 <= steps_done <
/// num_steps), so the collective's logical state is known exactly: in the
/// reduce stage the surviving representatives hold their subtree partial
/// sums; in the broadcast stage some mirrors are still owed.  The returned
/// build finishes the all-reduce from that state — a fresh sub-all-reduce
/// among the survivors (sized for params.num_wavelengths, so a wider band
/// yields fewer levels and a narrower one more) followed by the mirrors of
/// the already-executed tree levels, recolored for the new budget.
/// Executing the first steps_done steps of `build` and then all steps of the
/// returned build is a complete all-reduce among `participants` (the
/// original participant set `build` was constructed for).
///
/// Composes: the result is itself a structurally valid WrhtBuild, so a
/// resized or resumed execution can be renegotiated again at a later
/// boundary.  Returns nullopt when an inherited mirror level cannot be
/// recolored within params.num_wavelengths (the caller must keep a band at
/// least as wide as that level needs, or wait for one).
[[nodiscard]] std::optional<WrhtBuild> rebuild_wrht_remainder(
    const WrhtBuild& build, std::size_t steps_done,
    const std::vector<topo::NodeId>& participants, std::uint32_t ring_size,
    const WrhtParams& params);

/// Fault variant of rebuild_wrht_remainder: the nodes in `evicted` have
/// FAILED and must be dropped from the remainder's delivery set.  Succeeds
/// only when every evicted node's contribution is already merged and no
/// survivor depends on it for delivery:
///
///  * an evicted node still holding a live subtree partial (it is among the
///    surviving representatives at this boundary) loses those contributions
///    with it — refused, the caller must restart among the survivors;
///  * an evicted node that is the representative of an owed mirror group
///    with surviving members would orphan their delivery — refused likewise.
///
/// Otherwise evicted nodes are stripped from the owed mirror levels (groups
/// whose membership dies entirely are dropped, levels left with no transfers
/// are skipped).  Executing the first steps_done steps of `build` and then
/// the returned build delivers the sum over ALL original participants to
/// every participant EXCEPT the evicted ones, whose final state is
/// unspecified — exactly what the contributors/recipients all-reduce oracle
/// checks.  With `evicted` empty this is rebuild_wrht_remainder.
[[nodiscard]] std::optional<WrhtBuild> rebuild_wrht_remainder_evicting(
    const WrhtBuild& build, std::size_t steps_done,
    const std::vector<topo::NodeId>& participants,
    const std::vector<topo::NodeId>& evicted, std::uint32_t ring_size,
    const WrhtParams& params);

}  // namespace wrht::core
