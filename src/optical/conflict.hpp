// Conflict analysis between concurrent arcs on the WDM ring.
//
// Two arcs conflict iff they traverse a common span on the same waveguide;
// conflicting arcs need distinct wavelengths.  The conflict graph drives the
// assignment heuristics, and the maximum per-(direction, span) load is the
// classic lower bound on the number of wavelengths any assignment needs.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/ring.hpp"

namespace wrht::optical {

class ConflictGraph {
 public:
  ConflictGraph(const topo::RingTopology& ring,
                const std::vector<topo::Arc>& arcs);

  [[nodiscard]] std::size_t num_arcs() const { return adjacency_.size(); }
  [[nodiscard]] bool conflicts(std::size_t a, std::size_t b) const;
  [[nodiscard]] const std::vector<std::size_t>& neighbors(
      std::size_t a) const {
    return adjacency_[a];
  }
  [[nodiscard]] std::size_t num_conflict_pairs() const { return pairs_; }

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t pairs_ = 0;
};

/// max over (direction, span) of the number of arcs covering it; a lower
/// bound for the wavelengths required by any conflict-free assignment.
[[nodiscard]] std::uint32_t max_link_load(const topo::RingTopology& ring,
                                          const std::vector<topo::Arc>& arcs);

/// Exact chromatic number of the conflict graph by branch-and-bound.
/// Exponential; intended for test instances (num_arcs <= ~24).
[[nodiscard]] std::uint32_t optimal_wavelength_count(
    const topo::RingTopology& ring, const std::vector<topo::Arc>& arcs);

}  // namespace wrht::optical
