// Optical interconnect parameters (TeraRack-style micro-ring resonator ring).
//
// Defaults are calibrated to reproduce the shape of the paper's Figure 2;
// DESIGN.md §3 documents the calibration.  Everything is a plain value so a
// bench can sweep any knob.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace wrht::optical {

/// Wavelength-division multiplexing capability of one waveguide.
struct WdmSpec {
  std::uint32_t num_wavelengths = 64;
  util::Bandwidth wavelength_bandwidth = util::gbps(40.0);

  [[nodiscard]] util::Bandwidth aggregate_bandwidth() const {
    return wavelength_bandwidth * static_cast<double>(num_wavelengths);
  }
};

struct OpticalParams {
  WdmSpec wdm{};

  /// Micro-ring resonator retuning time, charged whenever an endpoint must
  /// move a transceiver to a different wavelength between steps.  Thermal
  /// tuning of silicon micro-rings settles in the 1-10 ms range;
  /// electro-optic designs reach microseconds (sweep this knob in the
  /// retune_ablation bench).
  util::Seconds tune_time = util::milliseconds(2.5);

  /// Per-step synchronization (the distributed barrier that separates
  /// schedule steps: control-plane arbitration of the shared medium).
  util::Seconds sync_time = util::microseconds(25.0);

  /// Transceiver lock/clock-recovery time after retuning.
  util::Seconds transceiver_time = util::microseconds(25.0);

  /// Propagation delay per ring span (a few meters of fiber/waveguide).
  util::Seconds propagation_per_hop = util::nanoseconds(25.0);

  /// Charge `tune_time` on every step even if the endpoint wavelengths did
  /// not change.  The paper's cost model charges the fixed optical overhead
  /// per step; keep true for reproduction, set false for the ablation that
  /// tracks transceiver state across steps.
  bool retune_every_step = true;

  [[nodiscard]] util::Seconds fixed_step_overhead() const {
    return sync_time + tune_time + transceiver_time;
  }
};

}  // namespace wrht::optical
