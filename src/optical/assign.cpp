#include "optical/assign.hpp"

#include <algorithm>
#include <numeric>

namespace wrht::optical {

const char* fit_policy_name(FitPolicy policy) {
  return policy == FitPolicy::kFirstFit ? "first_fit" : "best_fit";
}

namespace {

std::optional<WavelengthId> pick(const SpectrumMap& spectrum,
                                 const topo::Arc& arc, FitPolicy policy) {
  if (policy == FitPolicy::kFirstFit) return spectrum.first_free(arc);
  // Best Fit: the feasible wavelength that is already the most used across
  // the ring (pack tightly, keep fresh wavelengths for long arcs).
  std::optional<WavelengthId> best;
  std::uint32_t best_usage = 0;
  for (WavelengthId lambda = 0; lambda < spectrum.num_wavelengths(); ++lambda) {
    if (!spectrum.is_free(arc, lambda)) continue;
    const std::uint32_t u = spectrum.usage(lambda);
    if (!best.has_value() || u > best_usage) {
      best = lambda;
      best_usage = u;
    }
  }
  return best;
}

AssignmentResult assign_in_order(const topo::RingTopology& ring,
                                 const std::vector<topo::Arc>& arcs,
                                 const std::vector<std::size_t>& order,
                                 std::uint32_t max_wavelengths,
                                 FitPolicy policy) {
  AssignmentResult result;
  result.lambda.assign(arcs.size(), 0);
  SpectrumMap spectrum(ring, std::max(1u, max_wavelengths));
  for (const std::size_t i : order) {
    const std::optional<WavelengthId> lambda =
        pick(spectrum, arcs[i], policy);
    if (!lambda.has_value()) {
      result.ok = false;
      result.failed_arc = i;
      return result;
    }
    spectrum.reserve(arcs[i], *lambda);
    result.lambda[i] = *lambda;
    result.wavelengths_used =
        std::max(result.wavelengths_used, *lambda + 1);
  }
  result.ok = true;
  return result;
}

}  // namespace

AssignmentResult assign_wavelengths(const topo::RingTopology& ring,
                                    const std::vector<topo::Arc>& arcs,
                                    std::uint32_t max_wavelengths,
                                    FitPolicy policy) {
  std::vector<std::size_t> order(arcs.size());
  std::iota(order.begin(), order.end(), 0);
  return assign_in_order(ring, arcs, order, max_wavelengths, policy);
}

AssignmentResult assign_wavelengths_longest_first(
    const topo::RingTopology& ring, const std::vector<topo::Arc>& arcs,
    std::uint32_t max_wavelengths, FitPolicy policy) {
  std::vector<std::size_t> order(arcs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return arcs[a].length > arcs[b].length;
                   });
  return assign_in_order(ring, arcs, order, max_wavelengths, policy);
}

std::vector<topo::Arc> balanced_all_to_all_arcs(
    const topo::RingTopology& ring, const std::vector<topo::NodeId>& nodes) {
  struct Pair {
    std::size_t row;  // position in the output (row-major ordered pairs)
    topo::NodeId src;
    topo::NodeId dst;
    std::uint32_t shortest;
  };
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (i == j) continue;
      pairs.push_back(Pair{pairs.size(), nodes[i], nodes[j],
                           ring.shortest_distance(nodes[i], nodes[j])});
    }
  }

  // Longest pairs placed first: they are the hardest to balance.
  std::vector<std::size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pairs[a].shortest > pairs[b].shortest;
                   });

  // Per-(direction, span) load accumulated so far.
  std::vector<std::uint32_t> load(std::size_t{2} * ring.num_spans(), 0);
  const auto span_cell = [&](const topo::Arc& arc, topo::SpanId span) {
    return static_cast<std::size_t>(arc.direction) * ring.num_spans() + span;
  };
  struct Candidate {
    topo::Arc arc;
    std::uint32_t peak = 0;   // max load along the arc if chosen
    std::uint64_t total = 0;  // sum of loads along the arc
  };
  const auto evaluate = [&](const topo::Arc& arc) {
    Candidate c{arc, 0, 0};
    for (const topo::SpanId span : ring.spans(arc)) {
      const std::uint32_t l = load[span_cell(arc, span)];
      c.peak = std::max(c.peak, l + 1);
      c.total += l;
    }
    return c;
  };

  std::vector<topo::Arc> arcs(pairs.size());
  for (const std::size_t p : order) {
    const Pair& pair = pairs[p];
    const Candidate cw =
        evaluate(ring.arc(pair.src, pair.dst, topo::Direction::kClockwise));
    const Candidate ccw = evaluate(
        ring.arc(pair.src, pair.dst, topo::Direction::kCounterClockwise));
    // Prefer the lower resulting peak; break ties by lower total load, then
    // by the shorter arc, then clockwise — all deterministic.
    const Candidate* chosen = &cw;
    if (ccw.peak < cw.peak ||
        (ccw.peak == cw.peak &&
         (ccw.total < cw.total ||
          (ccw.total == cw.total && ccw.arc.length < cw.arc.length)))) {
      chosen = &ccw;
    }
    for (const topo::SpanId span : ring.spans(chosen->arc)) {
      ++load[span_cell(chosen->arc, span)];
    }
    arcs[pair.row] = chosen->arc;
  }
  return arcs;
}

}  // namespace wrht::optical
