// Wavelength assignment for a set of concurrent transfers (arcs).
//
// First Fit and Best Fit are the two policies the paper cites for assigning
// wavelengths within Wrht subgroups.  Both are greedy over the arcs in the
// given order; Best Fit prefers already-busy wavelengths (packing the
// spectrum), First Fit simply takes the lowest feasible index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "optical/spectrum.hpp"
#include "topo/ring.hpp"

namespace wrht::optical {

enum class FitPolicy : std::uint8_t { kFirstFit, kBestFit };

[[nodiscard]] const char* fit_policy_name(FitPolicy policy);

struct AssignmentResult {
  /// lambda[i] is the wavelength of arcs[i]; valid only when ok.
  std::vector<WavelengthId> lambda;
  /// Number of distinct wavelengths used (max index + 1).
  std::uint32_t wavelengths_used = 0;
  /// False when some arc could not be placed within max_wavelengths.
  bool ok = false;
  /// Index of the first arc that failed (when !ok).
  std::optional<std::size_t> failed_arc;
};

/// Assign wavelengths to `arcs` so that no two arcs sharing a span on the
/// same waveguide get the same wavelength, using at most `max_wavelengths`.
[[nodiscard]] AssignmentResult assign_wavelengths(
    const topo::RingTopology& ring, const std::vector<topo::Arc>& arcs,
    std::uint32_t max_wavelengths, FitPolicy policy = FitPolicy::kFirstFit);

/// Same, but processes arcs longest-first (a standard improvement for
/// interval coloring); the result's lambda[] is still indexed by the
/// original arc order.
[[nodiscard]] AssignmentResult assign_wavelengths_longest_first(
    const topo::RingTopology& ring, const std::vector<topo::Arc>& arcs,
    std::uint32_t max_wavelengths, FitPolicy policy = FitPolicy::kFirstFit);

/// Direction-balanced routing for all-to-all exchange among `nodes` (the
/// Wrht merge step; Liang & Shen's setting).  Plain shortest-path routing
/// overloads one waveguide (opposite pairs tie, nested arcs stack), blowing
/// the paper's ceil(k^2/8) wavelength budget.  This router assigns each
/// ordered pair a direction greedily — longest pairs first, choosing the
/// waveguide that minimizes the resulting maximum span load — which matches
/// the load bound on the symmetric instances the merge step produces.
/// Returns one arc per ordered pair (i, j), i != j, in row-major order of
/// (index of i, index of j) within `nodes`.
[[nodiscard]] std::vector<topo::Arc> balanced_all_to_all_arcs(
    const topo::RingTopology& ring, const std::vector<topo::NodeId>& nodes);

}  // namespace wrht::optical
