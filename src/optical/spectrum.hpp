// Per-span, per-wavelength occupancy of the two counter-rotating waveguides.
//
// A transfer claims one wavelength on every span of its arc; the map rejects
// double-booking, which is exactly the wavelength-conflict rule of a WDM
// ring without wavelength conversion.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/ring.hpp"

namespace wrht::optical {

using WavelengthId = std::uint32_t;

class SpectrumMap {
 public:
  SpectrumMap(const topo::RingTopology& ring, std::uint32_t num_wavelengths);

  [[nodiscard]] std::uint32_t num_wavelengths() const {
    return num_wavelengths_;
  }

  /// Is `lambda` free on every span of `arc`?
  [[nodiscard]] bool is_free(const topo::Arc& arc, WavelengthId lambda) const;

  /// Smallest wavelength free along the whole arc, if any (First Fit probe).
  [[nodiscard]] std::optional<WavelengthId> first_free(
      const topo::Arc& arc) const;

  /// Claim `lambda` along `arc`.  Aborts if any span is already taken
  /// (callers must check is_free first; a conflict here is a logic error).
  void reserve(const topo::Arc& arc, WavelengthId lambda);

  /// Atomic check-and-claim: reserve `lambda` along `arc` iff every span is
  /// free, otherwise change nothing and return false.  Lets multi-job
  /// callers (the runtime's spectrum arbitration) detect a double-booking
  /// and report it instead of dying inside the map.
  [[nodiscard]] bool try_reserve(const topo::Arc& arc, WavelengthId lambda);

  /// Release `lambda` along `arc`.  Aborts if any span was not reserved.
  void release(const topo::Arc& arc, WavelengthId lambda);

  /// Number of wavelengths with at least one occupied span.
  [[nodiscard]] std::uint32_t wavelengths_in_use() const;

  /// Occupied (span, lambda) pairs on the given waveguide direction.
  [[nodiscard]] std::uint64_t occupied_cells(topo::Direction dir) const;

  /// Total usage count of `lambda` across both waveguides (for Best Fit).
  [[nodiscard]] std::uint32_t usage(WavelengthId lambda) const;

  void clear();

 private:
  [[nodiscard]] std::size_t cell(topo::Direction dir, topo::SpanId span,
                                 WavelengthId lambda) const;

  const topo::RingTopology* ring_;
  std::uint32_t num_wavelengths_;
  std::vector<bool> occupied_;          // [dir][span][lambda]
  std::vector<std::uint32_t> usage_;    // per lambda, both directions
};

}  // namespace wrht::optical
