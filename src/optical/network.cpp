#include "optical/network.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace wrht::optical {

OpticalRingNetwork::OpticalRingNetwork(std::uint32_t num_nodes,
                                       OpticalParams params)
    : ring_(num_nodes),
      params_(params),
      spectrum_(ring_, params.wdm.num_wavelengths),
      transceivers_(num_nodes) {}

util::Seconds transfer_cost(const OpticalParams& params,
                            const TimedTransfer& transfer, bool retuned) {
  util::Seconds duration{0.0};
  if (retuned) {
    duration += params.tune_time + params.transceiver_time;
  }
  duration +=
      params.propagation_per_hop * static_cast<double>(transfer.arc.length);
  const double stripes = static_cast<double>(transfer.lambdas.size());
  const util::Bandwidth effective =
      params.wdm.wavelength_bandwidth * stripes;
  duration += effective.transfer_time(transfer.bytes);
  return duration;
}

util::Seconds OpticalRingNetwork::transfer_duration(const TimedTransfer& t,
                                                    bool retuned) const {
  return transfer_cost(params_, t, retuned);
}

StepResult OpticalRingNetwork::execute_step(
    const std::vector<TimedTransfer>& transfers) {
  const util::Seconds step_start = simulator_.now();
  trace_.record(step_start, sim::TraceKind::kStepBegin,
                static_cast<std::int64_t>(step_index_));

  StepResult result;

  // Reserve the spectrum for the whole step; conflicts are schedule bugs.
  for (const TimedTransfer& t : transfers) {
    WRHT_REQUIRE(!t.lambdas.empty(),
                 "OpticalRingNetwork: transfer without wavelength");
    WRHT_REQUIRE(t.arc.length > 0 && t.src != t.dst,
                 "OpticalRingNetwork: degenerate transfer " << t.src << "->"
                                                            << t.dst);
    for (const WavelengthId lambda : t.lambdas) {
      spectrum_.reserve(t.arc, lambda);  // aborts on double-booking
    }
  }

  util::Seconds step_end = step_start;
  for (const TimedTransfer& t : transfers) {
    // A transfer occupies the sender's transmit bank and the receiver's
    // receive bank on the arc's waveguide.  Primary wavelength decides the
    // retune; extra striped wavelengths ride parallel resonators in the
    // same bank and retune concurrently.
    const WavelengthId primary = t.lambdas.front();
    bool retuned = transceivers_.retune_tx(t.src, t.arc.direction, primary);
    retuned |= transceivers_.retune_rx(t.dst, t.arc.direction, primary);
    if (params_.retune_every_step) retuned = true;
    if (retuned) ++result.retunes;

    const util::Seconds duration = transfer_duration(t, retuned);
    const util::Seconds data_time =
        (params_.wdm.wavelength_bandwidth *
         static_cast<double>(t.lambdas.size()))
            .transfer_time(t.bytes);
    result.slowest_data = std::max(result.slowest_data, data_time);
    transfer_times_.record(duration.value());

    const util::Seconds finish = step_start + duration;
    step_end = std::max(step_end, finish);
    spectrum_cell_seconds_ += duration.value() *
                              static_cast<double>(t.lambdas.size()) *
                              static_cast<double>(t.arc.length);

    trace_.record(step_start, sim::TraceKind::kTransferBegin, t.src, t.dst);
    if (retuned) {
      trace_.record(step_start, sim::TraceKind::kTune, t.src,
                    static_cast<std::int64_t>(primary));
    }
    simulator_.schedule_at(finish, [this, t] {
      trace_.record(simulator_.now(), sim::TraceKind::kTransferEnd, t.src,
                    t.dst);
      for (const WavelengthId lambda : t.lambdas) {
        spectrum_.release(t.arc, lambda);
      }
    });
  }

  // The inter-step synchronization gap separates this step from the next.
  step_end += params_.sync_time;
  simulator_.schedule_at(step_end, [this] {
    trace_.record(simulator_.now(), sim::TraceKind::kStepEnd,
                  static_cast<std::int64_t>(step_index_));
  });
  simulator_.run();

  result.duration = step_end - step_start;
  ++step_index_;
  return result;
}

RunResult OpticalRingNetwork::execute_steps(
    const std::vector<std::vector<TimedTransfer>>& steps) {
  RunResult run;
  const util::Seconds start = simulator_.now();
  for (const std::vector<TimedTransfer>& step : steps) {
    const StepResult r = execute_step(step);
    run.total_retunes += r.retunes;
    run.steps.push_back(r);
  }
  run.total = simulator_.now() - start;
  return run;
}

double OpticalRingNetwork::spectrum_utilization() const {
  const double elapsed = simulator_.now().value();
  if (elapsed <= 0.0) return 0.0;
  const double capacity = elapsed *
                          static_cast<double>(params_.wdm.num_wavelengths) *
                          2.0 * static_cast<double>(ring_.num_spans());
  return spectrum_cell_seconds_ / capacity;
}

void OpticalRingNetwork::reset() {
  simulator_ = sim::Simulator();
  spectrum_.clear();
  transceivers_.reset();
  transfer_times_ = sim::Summary();
  trace_.clear();
  step_index_ = 0;
  spectrum_cell_seconds_ = 0.0;
}

}  // namespace wrht::optical
