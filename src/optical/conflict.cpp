#include "optical/conflict.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace wrht::optical {

ConflictGraph::ConflictGraph(const topo::RingTopology& ring,
                             const std::vector<topo::Arc>& arcs) {
  adjacency_.resize(arcs.size());
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    for (std::size_t b = a + 1; b < arcs.size(); ++b) {
      if (ring.arcs_conflict(arcs[a], arcs[b])) {
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
        ++pairs_;
      }
    }
  }
}

bool ConflictGraph::conflicts(std::size_t a, std::size_t b) const {
  const auto& nbrs = adjacency_[a];
  return std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
}

std::uint32_t max_link_load(const topo::RingTopology& ring,
                            const std::vector<topo::Arc>& arcs) {
  std::vector<std::uint32_t> load(std::size_t{2} * ring.num_spans(), 0);
  for (const topo::Arc& arc : arcs) {
    for (const topo::SpanId span : ring.spans(arc)) {
      ++load[static_cast<std::size_t>(arc.direction) * ring.num_spans() + span];
    }
  }
  std::uint32_t worst = 0;
  for (const std::uint32_t l : load) worst = std::max(worst, l);
  return worst;
}

namespace {

// Classic branch-and-bound graph coloring: try to color with k colors for
// increasing k starting at the clique-ish lower bound (max link load).
bool color_with(const ConflictGraph& graph, std::uint32_t k,
                std::vector<std::uint32_t>& color, std::size_t index) {
  if (index == graph.num_arcs()) return true;
  for (std::uint32_t c = 0; c < k; ++c) {
    bool feasible = true;
    for (const std::size_t nbr : graph.neighbors(index)) {
      if (nbr < index && color[nbr] == c) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    color[index] = c;
    if (color_with(graph, k, color, index + 1)) return true;
  }
  return false;
}

}  // namespace

std::uint32_t optimal_wavelength_count(const topo::RingTopology& ring,
                                       const std::vector<topo::Arc>& arcs) {
  if (arcs.empty()) return 0;
  WRHT_REQUIRE(arcs.size() <= 24,
               "optimal_wavelength_count: " << arcs.size()
                                            << " arcs is too large for exact "
                                               "coloring");
  const ConflictGraph graph(ring, arcs);
  std::vector<std::uint32_t> color(arcs.size(), 0);
  for (std::uint32_t k = std::max(1u, max_link_load(ring, arcs));; ++k) {
    if (color_with(graph, k, color, 0)) return k;
  }
}

}  // namespace wrht::optical
