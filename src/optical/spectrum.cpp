#include "optical/spectrum.hpp"

#include "util/check.hpp"

namespace wrht::optical {

SpectrumMap::SpectrumMap(const topo::RingTopology& ring,
                         std::uint32_t num_wavelengths)
    : ring_(&ring), num_wavelengths_(num_wavelengths) {
  WRHT_REQUIRE(num_wavelengths > 0,
               "SpectrumMap: need at least one wavelength");
  occupied_.assign(std::size_t{2} * ring.num_spans() * num_wavelengths, false);
  usage_.assign(num_wavelengths, 0);
}

std::size_t SpectrumMap::cell(topo::Direction dir, topo::SpanId span,
                              WavelengthId lambda) const {
  return (static_cast<std::size_t>(dir) * ring_->num_spans() + span) *
             num_wavelengths_ +
         lambda;
}

bool SpectrumMap::is_free(const topo::Arc& arc, WavelengthId lambda) const {
  if (lambda >= num_wavelengths_) return false;
  for (const topo::SpanId span : ring_->spans(arc)) {
    if (occupied_[cell(arc.direction, span, lambda)]) return false;
  }
  return true;
}

std::optional<WavelengthId> SpectrumMap::first_free(
    const topo::Arc& arc) const {
  for (WavelengthId lambda = 0; lambda < num_wavelengths_; ++lambda) {
    if (is_free(arc, lambda)) return lambda;
  }
  return std::nullopt;
}

void SpectrumMap::reserve(const topo::Arc& arc, WavelengthId lambda) {
  for (const topo::SpanId span : ring_->spans(arc)) {
    const std::size_t c = cell(arc.direction, span, lambda);
    WRHT_REQUIRE(!occupied_[c],
                 "SpectrumMap: wavelength "
                     << lambda << " already taken on span " << span << " ("
                     << topo::direction_name(arc.direction) << ")");
    occupied_[c] = true;
    ++usage_[lambda];
  }
}

bool SpectrumMap::try_reserve(const topo::Arc& arc, WavelengthId lambda) {
  if (!is_free(arc, lambda)) return false;
  reserve(arc, lambda);
  return true;
}

void SpectrumMap::release(const topo::Arc& arc, WavelengthId lambda) {
  for (const topo::SpanId span : ring_->spans(arc)) {
    const std::size_t c = cell(arc.direction, span, lambda);
    WRHT_REQUIRE(occupied_[c], "SpectrumMap: releasing free wavelength "
                                   << lambda << " on span " << span);
    occupied_[c] = false;
    --usage_[lambda];
  }
}

std::uint32_t SpectrumMap::wavelengths_in_use() const {
  std::uint32_t used = 0;
  for (WavelengthId lambda = 0; lambda < num_wavelengths_; ++lambda) {
    if (usage_[lambda] > 0) ++used;
  }
  return used;
}

std::uint64_t SpectrumMap::occupied_cells(topo::Direction dir) const {
  std::uint64_t count = 0;
  for (topo::SpanId span = 0; span < ring_->num_spans(); ++span) {
    for (WavelengthId lambda = 0; lambda < num_wavelengths_; ++lambda) {
      if (occupied_[cell(dir, span, lambda)]) ++count;
    }
  }
  return count;
}

std::uint32_t SpectrumMap::usage(WavelengthId lambda) const {
  return lambda < num_wavelengths_ ? usage_[lambda] : 0;
}

void SpectrumMap::clear() {
  occupied_.assign(occupied_.size(), false);
  usage_.assign(usage_.size(), 0);
}

}  // namespace wrht::optical
