// Discrete-event simulator of the optical WDM ring.
//
// The network executes *timed steps*: each step is a set of concurrent
// transfers, each pinned to an arc and one or more wavelengths (striping
// over several wavelengths is the Wrht extension).  Per step, every transfer
// pays its fixed optical overheads (tuning, transceiver lock, propagation)
// plus serialization at wavelength bandwidth; the step completes when its
// slowest transfer finishes, plus the inter-step synchronization gap — the
// cost model the paper uses, realized as events on a simulation clock.
//
// The simulator also *enforces* physical feasibility: every (span,
// wavelength, direction) cell is reserved for the duration of the step, so a
// schedule with a wavelength conflict aborts instead of silently timing.
#pragma once

#include <cstdint>
#include <vector>

#include "optical/params.hpp"
#include "optical/spectrum.hpp"
#include "optical/transceiver.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "topo/ring.hpp"
#include "util/units.hpp"

namespace wrht::optical {

struct TimedTransfer {
  topo::NodeId src = 0;
  topo::NodeId dst = 0;
  util::Bytes bytes;
  topo::Arc arc;
  /// Wavelengths carrying this transfer; bytes are striped evenly across
  /// them.  Must be non-empty and duplicate-free.
  std::vector<WavelengthId> lambdas;
};

struct StepResult {
  util::Seconds duration;       // makespan of the step incl. sync gap
  util::Seconds slowest_data;   // largest serialization component
  std::uint64_t retunes = 0;    // resonator moves charged this step
};

struct RunResult {
  util::Seconds total;
  std::vector<StepResult> steps;
  std::uint64_t total_retunes = 0;
};

/// Wall time of one transfer under the paper's cost model: optional
/// retune + transceiver lock, propagation along the arc, serialization at
/// wavelength bandwidth times the stripe count.  Shared by the single-job
/// DES below and the multi-tenant runtime so their timings cannot drift.
[[nodiscard]] util::Seconds transfer_cost(const OpticalParams& params,
                                          const TimedTransfer& transfer,
                                          bool retuned);

class OpticalRingNetwork {
 public:
  OpticalRingNetwork(std::uint32_t num_nodes, OpticalParams params);

  [[nodiscard]] const topo::RingTopology& ring() const { return ring_; }
  [[nodiscard]] const OpticalParams& params() const { return params_; }

  /// Execute one step starting at the current simulated time.
  StepResult execute_step(const std::vector<TimedTransfer>& transfers);

  /// Execute a whole step sequence; returns per-step and total timing.
  RunResult execute_steps(
      const std::vector<std::vector<TimedTransfer>>& steps);

  [[nodiscard]] util::Seconds now() const { return simulator_.now(); }
  [[nodiscard]] const sim::Summary& transfer_times() const {
    return transfer_times_;
  }
  [[nodiscard]] sim::Trace& trace() { return trace_; }

  /// Spectrum hold in cell-seconds: every (span, wavelength) a transfer
  /// reserves, weighted by how long it holds it.  Divided by the total
  /// capacity (elapsed x wavelengths x 2 waveguides x spans) this yields
  /// the fabric utilization — the headroom metric the wavelength_planner
  /// example reports.
  [[nodiscard]] double spectrum_cell_seconds() const {
    return spectrum_cell_seconds_;
  }
  [[nodiscard]] double spectrum_utilization() const;

  /// Restore time zero and untuned transceivers (spectrum is already empty
  /// between steps).
  void reset();

 private:
  [[nodiscard]] util::Seconds transfer_duration(const TimedTransfer& t,
                                                bool retuned) const;

  topo::RingTopology ring_;
  OpticalParams params_;
  sim::Simulator simulator_;
  SpectrumMap spectrum_;
  TransceiverBank transceivers_;
  sim::Summary transfer_times_;
  sim::Trace trace_;
  std::size_t step_index_ = 0;
  double spectrum_cell_seconds_ = 0.0;
};

}  // namespace wrht::optical
