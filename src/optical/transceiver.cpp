#include "optical/transceiver.hpp"

namespace wrht::optical {

TransceiverBank::TransceiverBank(std::uint32_t num_nodes)
    : num_nodes_(num_nodes),
      tx_(std::size_t{2} * num_nodes, kUntuned),
      rx_(std::size_t{2} * num_nodes, kUntuned) {}

std::size_t TransceiverBank::slot(topo::NodeId node,
                                  topo::Direction dir) const {
  return std::size_t{2} * node + static_cast<std::size_t>(dir);
}

bool TransceiverBank::retune_tx(topo::NodeId node, topo::Direction dir,
                                WavelengthId lambda) {
  std::uint32_t& position = tx_[slot(node, dir)];
  if (position == lambda) return false;
  position = lambda;
  ++retunes_;
  return true;
}

bool TransceiverBank::retune_rx(topo::NodeId node, topo::Direction dir,
                                WavelengthId lambda) {
  std::uint32_t& position = rx_[slot(node, dir)];
  if (position == lambda) return false;
  position = lambda;
  ++retunes_;
  return true;
}

std::optional<WavelengthId> TransceiverBank::tx_position(
    topo::NodeId node, topo::Direction dir) const {
  const std::uint32_t position = tx_[slot(node, dir)];
  if (position == kUntuned) return std::nullopt;
  return position;
}

std::optional<WavelengthId> TransceiverBank::rx_position(
    topo::NodeId node, topo::Direction dir) const {
  const std::uint32_t position = rx_[slot(node, dir)];
  if (position == kUntuned) return std::nullopt;
  return position;
}

void TransceiverBank::reset() {
  tx_.assign(tx_.size(), kUntuned);
  rx_.assign(rx_.size(), kUntuned);
  retunes_ = 0;
}

}  // namespace wrht::optical
