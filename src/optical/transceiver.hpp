// Per-node micro-ring-resonator transceiver state.
//
// Each node carries a transmit and a receive MRR bank per waveguide
// direction.  Moving a bank to a different wavelength costs tune_time; the
// network model consults this state to decide whether a step's transfer pays
// the retuning penalty (unless OpticalParams::retune_every_step forces the
// conservative per-step charge the paper's cost model uses).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "optical/spectrum.hpp"
#include "topo/ring.hpp"

namespace wrht::optical {

class TransceiverBank {
 public:
  explicit TransceiverBank(std::uint32_t num_nodes);

  /// Returns true when the (node, direction) transmitter must retune to use
  /// `lambda`, and records `lambda` as its new position.
  bool retune_tx(topo::NodeId node, topo::Direction dir, WavelengthId lambda);
  /// Same for the receiver bank.
  bool retune_rx(topo::NodeId node, topo::Direction dir, WavelengthId lambda);

  [[nodiscard]] std::optional<WavelengthId> tx_position(
      topo::NodeId node, topo::Direction dir) const;
  [[nodiscard]] std::optional<WavelengthId> rx_position(
      topo::NodeId node, topo::Direction dir) const;

  [[nodiscard]] std::uint64_t total_retunes() const { return retunes_; }

  void reset();

 private:
  static constexpr std::uint32_t kUntuned = 0xFFFFFFFFu;
  [[nodiscard]] std::size_t slot(topo::NodeId node, topo::Direction dir) const;

  std::uint32_t num_nodes_;
  std::vector<std::uint32_t> tx_;  // [node * 2 + dir]
  std::vector<std::uint32_t> rx_;
  std::uint64_t retunes_ = 0;
};

}  // namespace wrht::optical
