// Strict JSON validator for the observability artifacts CI emits: every
// --trace-out / --metrics-out / bench-JSON file is fed through obs::
// json_parse, and any parse error fails the build with the byte offset of
// the first problem.  Run with file arguments to validate them, or with no
// arguments for a built-in self-test (exercised under CTest) proving the
// checker rejects what it should.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

int check_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const wrht::obs::JsonParseResult result = wrht::obs::json_parse(text);
  if (!result.ok) {
    std::fprintf(stderr, "json_check: %s: %s (at byte %zu)\n", path.c_str(),
                 result.error.c_str(), result.offset);
    return 1;
  }
  std::printf("json_check: %s OK (%zu bytes)\n", path.c_str(), text.size());
  return 0;
}

int self_test() {
  const char* good[] = {
      "{}",
      "[1, 2.5, -3e2, \"s\", true, false, null]",
      "{\"traceEvents\": [{\"ph\": \"B\", \"ts\": 0.5}], \"k\": \"\\u00e9\"}",
  };
  const char* bad[] = {
      "",            // empty document
      "{",           // unterminated object
      "[1, ]",       // trailing comma
      "{\"a\": 1} x",  // trailing garbage
      "\"\\q\"",     // bad escape
      "01",          // leading zero
  };
  for (const char* text : good) {
    if (!wrht::obs::json_parse(text).ok) {
      std::fprintf(stderr, "json_check self-test: rejected valid: %s\n", text);
      return 1;
    }
  }
  for (const char* text : bad) {
    if (wrht::obs::json_parse(text).ok) {
      std::fprintf(stderr, "json_check self-test: accepted invalid: %s\n",
                   text);
      return 1;
    }
  }
  std::printf("json_check: self-test OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return self_test();
  int failures = 0;
  for (int i = 1; i < argc; ++i) failures += check_file(argv[i]);
  return failures == 0 ? 0 : 1;
}
