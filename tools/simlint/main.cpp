// simlint CLI.  Usage:
//
//   simlint [--root=DIR] [--rule=NAME]... [--list-rules] <path>...
//
// Paths are files or directories, relative to --root (default: cwd);
// directories are walked recursively for *.cpp / *.hpp / *.h.  Exit status
// is 1 when any unwaived finding remains, so the same invocation serves as
// the CTest entry and the CI gate:
//
//   simlint --root=/path/to/repo src bench examples
#include "simlint/simlint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

std::string logical(const fs::path& path, const fs::path& root) {
  return fs::relative(path, root).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> only_rules;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--rule=", 0) == 0) {
      only_rules.insert(arg.substr(7));
    } else if (arg == "--list-rules") {
      for (const auto& rule : wrht::simlint::Linter::rules()) {
        std::printf("%-14s %s\n", rule.name.c_str(), rule.summary.c_str());
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "simlint: unknown option '%s'\n"
                   "usage: simlint [--root=DIR] [--rule=NAME]... "
                   "[--list-rules] <path>...\n",
                   arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "simlint: no paths given (try: src bench examples)\n");
    return 2;
  }

  const fs::path root_path = fs::absolute(root);
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    const fs::path path = root_path / input;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::fprintf(stderr, "simlint: no such path '%s'\n",
                   path.string().c_str());
      return 2;
    }
  }
  // Directory iteration order is unspecified; sort so output (and any diff
  // of it in CI artifacts) is deterministic.  simlint practices what it
  // preaches.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  wrht::simlint::Linter linter(root_path.string());
  std::size_t unwaived = 0;
  std::map<std::string, std::size_t> waived_by_rule;
  for (const fs::path& file : files) {
    for (const auto& finding :
         linter.lint_file(file.string(), logical(file, root_path))) {
      if (!only_rules.empty() && only_rules.count(finding.rule) == 0) continue;
      if (finding.waived) {
        ++waived_by_rule[finding.rule];
        std::printf("%s:%d: [%s] waived: %s\n", finding.file.c_str(),
                    finding.line, finding.rule.c_str(),
                    finding.waiver_reason.c_str());
      } else {
        ++unwaived;
        std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
      }
    }
  }

  std::size_t waived = 0;
  for (const auto& [rule, count] : waived_by_rule) {
    std::printf("simlint: %zu waiver%s for [%s]\n", count,
                count == 1 ? "" : "s", rule.c_str());
    waived += count;
  }
  std::printf("simlint: %zu file%s, %zu unwaived finding%s, %zu waived\n",
              files.size(), files.size() == 1 ? "" : "s", unwaived,
              unwaived == 1 ? "" : "s", waived);
  return unwaived == 0 ? 0 : 1;
}
