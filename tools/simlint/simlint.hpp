// simlint — the repo's determinism linter.
//
// Every correctness oracle in this codebase (schedule validation, flow
// replay, bit-exact SLO recomputation) assumes a discipline the compiler
// does not enforce: one sim clock, no ambient randomness, deterministic
// iteration feeding traces and reports, invariants that abort in every
// build type.  simlint checks that discipline statically, as a CTest and a
// CI gate, so an optimization PR cannot silently break it.
//
// It is deliberately NOT a libclang tool: rules are token/line-level over
// comment- and string-scrubbed source, plus an include-graph query for the
// one rule that needs TU-level context.  That keeps the tool dependency-free
// and fast enough to run on every build.  The cost is a known blind spot —
// tokens smuggled through macro definitions — which code review owns.
//
// Escape hatch: any finding can be waived in place with
//
//   // simlint-allow(<rule>): <reason>
//
// on the offending line or on a comment line directly above it.  Waivers
// without a reason are findings themselves (`bad-waiver`), and waivers that
// no longer suppress anything are findings too (`stale-waiver`), so the
// waiver list can only shrink unless someone argues a new one past review.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace wrht::simlint {

struct Finding {
  std::string file;  // logical repo-relative path, e.g. "src/foo/bar.cpp"
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  bool waived = false;
  std::string waiver_reason;  // set when waived
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

class Linter {
 public:
  /// `root` is the repository root; include directives are resolved against
  /// `<root>/src` (the project's single include directory) when the
  /// `unordered-iter` rule walks a translation unit's include closure.
  explicit Linter(std::string root);

  /// Lint `text` as though it lived at `logical_path` (repo-relative, using
  /// '/' separators).  Path-scoped rules key off the logical path, so test
  /// fixtures can exercise src/-only rules from anywhere on disk.
  [[nodiscard]] std::vector<Finding> lint_text(const std::string& text,
                                               const std::string& logical_path);

  /// Read `disk_path` and lint it under `logical_path`.  Returns a single
  /// `io-error` finding if the file cannot be read.
  [[nodiscard]] std::vector<Finding> lint_file(const std::string& disk_path,
                                               const std::string& logical_path);

  /// Every rule the linter knows, in reporting order.
  [[nodiscard]] static const std::vector<RuleInfo>& rules();

 private:
  [[nodiscard]] bool header_reaches_ordered_output(const std::string& include);

  std::string root_;
  // Memoized per include path: does this header transitively include one of
  // the trace/report headers?  (0 = in progress, guards include cycles.)
  std::map<std::string, int> ordered_cache_;
};

}  // namespace wrht::simlint
