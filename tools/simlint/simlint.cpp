#include "simlint/simlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>
#include <utility>

namespace wrht::simlint {
namespace {

// ------------------------------------------------------------------ scrubbing

struct Comment {
  int line = 0;        // line the comment starts on (1-based)
  std::string text;    // comment body, delimiters stripped
  bool line_has_code;  // was there code before the comment on its own line?
};

struct Scrubbed {
  std::vector<std::string> lines;  // string/char/comment contents blanked
  std::vector<Comment> comments;
};

bool has_non_space(const std::string& s) {
  return std::any_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) == 0;
  });
}

// One pass over the file: blank out comments and string/char literals
// (preserving line structure) and collect comment bodies for waiver parsing.
// Rules then run on text where `"time("` inside a string can no longer
// confuse them.
Scrubbed scrub(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  Scrubbed out;
  State state = State::kCode;
  std::string cur;      // scrubbed current line
  std::string comment;  // accumulating comment body
  std::string raw_delim;
  int line = 1;
  int comment_start = 0;
  bool comment_had_code = false;

  auto flush_comment = [&] {
    out.comments.push_back(Comment{comment_start, comment, comment_had_code});
    comment.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) {
        flush_comment();
        state = State::kCode;
      } else if (state == State::kBlockComment) {
        comment.push_back('\n');
      }
      out.lines.push_back(cur);
      cur.clear();
      ++line;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start = line;
          comment_had_code = has_non_space(cur);
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start = line;
          comment_had_code = has_non_space(cur);
          ++i;
        } else if (c == '"') {
          const bool raw_prefix =
              i >= 1 && text[i - 1] == 'R' &&
              (i < 2 || (std::isalnum(static_cast<unsigned char>(text[i - 2])) ==
                             0 &&
                         text[i - 2] != '_'));
          cur.push_back('"');
          if (raw_prefix) {
            state = State::kRaw;
            raw_delim.clear();
            while (i + 1 < text.size() && text[i + 1] != '(') {
              raw_delim.push_back(text[++i]);
            }
            ++i;  // consume '('
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
          cur.push_back('\'');
        } else {
          cur.push_back(c);
        }
        break;
      case State::kLineComment:
        comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          flush_comment();
          state = State::kCode;
          ++i;
        } else {
          comment.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          cur.push_back(' ');
          if (next != '\0' && next != '\n') {
            cur.push_back(' ');
            ++i;
          }
        } else if (c == '"') {
          cur.push_back('"');
          state = State::kCode;
        } else {
          cur.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          cur.push_back(' ');
          if (next != '\0' && next != '\n') {
            cur.push_back(' ');
            ++i;
          }
        } else if (c == '\'') {
          cur.push_back('\'');
          state = State::kCode;
        } else {
          cur.push_back(' ');
        }
        break;
      case State::kRaw:
        if (c == ')' && text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          i += 1 + raw_delim.size();
          cur.push_back('"');
          state = State::kCode;
        } else {
          cur.push_back(' ');
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    flush_comment();
  }
  out.lines.push_back(cur);
  return out;
}

// -------------------------------------------------------------------- waivers

struct Waiver {
  int comment_line = 0;
  int target_line = 0;
  std::string rule;
  std::string reason;
  bool used = false;
};

// --------------------------------------------------------------------- rules

enum class PathScope { kAll, kSrcOnly };

struct TokenRule {
  const char* name;
  const char* summary;
  std::regex re;
  PathScope scope = PathScope::kAll;
  std::vector<std::string> exempt_prefixes;
  bool needs_ordered_output = false;
};

// A floating literal for the float-eq rule: 1.0, .5f, 2., 1e-6, 3.5e+2L.
constexpr const char* kFloatLit =
    "(([0-9]+\\.[0-9]*|\\.[0-9]+)([eE][+-]?[0-9]+)?|[0-9]+[eE][+-]?[0-9]+)"
    "[fFlL]?";

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = [] {
    std::vector<TokenRule> r;
    r.push_back(TokenRule{
        "wallclock",
        "no wall-clock time sources; simulation code advances the sim clock",
        std::regex("\\b(system_clock|steady_clock|high_resolution_clock)\\b"
                   "|\\b(gettimeofday|clock_gettime)\\b"
                   "|(^|[^_A-Za-z0-9:.>])(time|clock)\\s*\\("),
        PathScope::kAll,
        {},
        false});
    r.push_back(TokenRule{
        "ambient-rng",
        "no ambient randomness; use util::Rng with an explicit seed",
        std::regex("std::rand\\b|\\bsrand\\s*\\(|\\brandom_device\\b"
                   "|\\bmt19937|\\bdefault_random_engine\\b|\\bminstd_rand"
                   "|(^|[^_A-Za-z0-9:.>])rand\\s*\\("),
        PathScope::kAll,
        {"src/util/random.hpp"},
        false});
    r.push_back(TokenRule{
        "unordered-iter",
        "no unordered containers in TUs that emit trace events or report "
        "rows (iteration order would leak into deterministic output)",
        std::regex("\\bunordered_(map|multimap|set|multiset)\\b"),
        PathScope::kAll,
        {},
        true});
    r.push_back(TokenRule{
        "float-eq",
        "no floating-point ==/!= against literals; use util::approx_eq / "
        "util::approx_zero or waive the exact sentinel comparison",
        std::regex(std::string("(==|!=)\\s*[-+]?") + kFloatLit + "|" +
                   kFloatLit + "\\s*(==|!=)"),
        PathScope::kAll,
        {"src/util/math.hpp", "src/util/math.cpp"},
        false});
    r.push_back(TokenRule{
        "assert-abort",
        "no raw assert()/abort() in src/ (compiled out under NDEBUG or "
        "message-free); use WRHT_CHECK / WRHT_REQUIRE",
        std::regex("(^|[^_A-Za-z0-9])assert\\s*\\(|std::abort\\b"
                   "|(^|[^_A-Za-z0-9:.>])abort\\s*\\("),
        PathScope::kSrcOnly,
        {},
        false});
    r.push_back(TokenRule{
        "printf-output",
        "no printf-family output in src/ outside harness/ and util/logging",
        std::regex("\\b(printf|fprintf|vprintf|vfprintf|puts|fputs|putchar"
                   "|fwrite)\\s*\\("),
        PathScope::kSrcOnly,
        {"src/harness/", "src/util/logging"},
        false});
    return r;
  }();
  return rules;
}

bool rule_applies(const TokenRule& rule, const std::string& path) {
  if (rule.scope == PathScope::kSrcOnly && path.rfind("src/", 0) != 0) {
    return false;
  }
  for (const std::string& prefix : rule.exempt_prefixes) {
    if (path.rfind(prefix, 0) == 0) return false;
  }
  return true;
}

bool known_rule(const std::string& name) {
  for (const TokenRule& rule : token_rules()) {
    if (name == rule.name) return true;
  }
  return false;
}

// Headers whose inclusion marks a TU as "emits ordered output": trace events
// and report/bench rows are diffed byte-for-byte across runs, so any
// iteration order feeding them must be deterministic.
const std::vector<std::string>& ordered_output_headers() {
  static const std::vector<std::string> headers = {
      "sim/trace.hpp", "harness/report.hpp", "harness/bench_json.hpp"};
  return headers;
}

std::vector<std::string> parse_includes(const std::string& text) {
  static const std::regex include_re("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    std::smatch m;
    if (std::regex_search(line, m, include_re)) out.push_back(m[1]);
  }
  return out;
}

std::string first_non_space_prefix(const std::string& line) {
  const std::size_t pos = line.find_first_not_of(" \t");
  return pos == std::string::npos ? std::string() : line.substr(pos);
}

}  // namespace

Linter::Linter(std::string root) : root_(std::move(root)) {
  if (!root_.empty() && root_.back() != '/') root_.push_back('/');
}

const std::vector<RuleInfo>& Linter::rules() {
  static const std::vector<RuleInfo> infos = [] {
    std::vector<RuleInfo> out;
    for (const TokenRule& rule : token_rules()) {
      out.push_back(RuleInfo{rule.name, rule.summary});
    }
    out.push_back(RuleInfo{"bad-waiver",
                           "simlint-allow waivers must name a known rule and "
                           "give a non-empty reason"});
    out.push_back(RuleInfo{"stale-waiver",
                           "simlint-allow waivers that no longer suppress a "
                           "finding must be deleted"});
    out.push_back(RuleInfo{"io-error", "file could not be read"});
    return out;
  }();
  return infos;
}

bool Linter::header_reaches_ordered_output(const std::string& include) {
  for (const std::string& target : ordered_output_headers()) {
    if (include == target) return true;
  }
  const auto cached = ordered_cache_.find(include);
  if (cached != ordered_cache_.end()) return cached->second > 0;
  ordered_cache_[include] = 0;  // in progress: include cycles resolve to "no"
  bool reaches = false;
  std::ifstream in(root_ + "src/" + include);
  if (in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    for (const std::string& inner : parse_includes(buffer.str())) {
      if (header_reaches_ordered_output(inner)) {
        reaches = true;
        break;
      }
    }
  }
  ordered_cache_[include] = reaches ? 1 : -1;
  return reaches;
}

std::vector<Finding> Linter::lint_text(const std::string& text,
                                       const std::string& logical_path) {
  const Scrubbed scrubbed = scrub(text);
  std::vector<Finding> findings;
  std::vector<Waiver> waivers;

  // -- waiver collection (and bad-waiver findings) --------------------------
  static const std::regex allow_re(
      "simlint-allow\\(([A-Za-z0-9_-]+)\\)\\s*:\\s*(\\S.*)");
  static const std::regex allow_mention("simlint-allow");
  for (const Comment& comment : scrubbed.comments) {
    if (!std::regex_search(comment.text, allow_mention)) continue;
    std::smatch m;
    if (!std::regex_search(comment.text, m, allow_re)) {
      findings.push_back(Finding{logical_path, comment.line, "bad-waiver",
                                 "malformed waiver; expected "
                                 "simlint-allow(<rule>): <reason>",
                                 false,
                                 {}});
      continue;
    }
    const std::string rule = m[1];
    if (!known_rule(rule)) {
      findings.push_back(Finding{logical_path, comment.line, "bad-waiver",
                                 "waiver names unknown rule '" + rule + "'",
                                 false,
                                 {}});
      continue;
    }
    // The waiver covers its own line when it trails code, otherwise the
    // first following line that carries code (so a waiver comment may sit
    // above the offending statement, even with continuation comment lines
    // in between).
    int target = comment.line;
    if (!comment.line_has_code) {
      target = 0;
      for (std::size_t l = comment.line;  // comment.line is 1-based
           l < scrubbed.lines.size(); ++l) {
        if (has_non_space(scrubbed.lines[l])) {
          target = static_cast<int>(l) + 1;
          break;
        }
      }
    }
    waivers.push_back(Waiver{comment.line, target, rule, m[2], false});
  }

  // -- token rules ----------------------------------------------------------
  bool ordered_known = false;
  bool ordered = false;
  auto emits_ordered_output = [&] {
    if (!ordered_known) {
      ordered_known = true;
      for (const std::string& target : ordered_output_headers()) {
        if (logical_path == "src/" + target) ordered = true;
      }
      for (const std::string& include : parse_includes(text)) {
        if (ordered) break;
        ordered = header_reaches_ordered_output(include);
      }
    }
    return ordered;
  };

  for (std::size_t i = 0; i < scrubbed.lines.size(); ++i) {
    const std::string& line = scrubbed.lines[i];
    // Skip preprocessor directives: `#include <unordered_map>` is not a use,
    // and macro bodies are this linter's documented blind spot.
    if (first_non_space_prefix(line).rfind('#', 0) == 0) continue;
    for (const TokenRule& rule : token_rules()) {
      if (!rule_applies(rule, logical_path)) continue;
      if (!std::regex_search(line, rule.re)) continue;
      if (rule.needs_ordered_output && !emits_ordered_output()) continue;
      findings.push_back(Finding{logical_path, static_cast<int>(i) + 1,
                                 rule.name, rule.summary, false, {}});
    }
  }

  // -- waiver application ---------------------------------------------------
  for (Finding& finding : findings) {
    for (Waiver& waiver : waivers) {
      if (waiver.rule == finding.rule && waiver.target_line == finding.line) {
        finding.waived = true;
        finding.waiver_reason = waiver.reason;
        waiver.used = true;
      }
    }
  }
  for (const Waiver& waiver : waivers) {
    if (!waiver.used) {
      findings.push_back(
          Finding{logical_path, waiver.comment_line, "stale-waiver",
                  "waiver for '" + waiver.rule +
                      "' no longer suppresses any finding; delete it",
                  false,
                  {}});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
            });
  return findings;
}

std::vector<Finding> Linter::lint_file(const std::string& disk_path,
                                       const std::string& logical_path) {
  std::ifstream in(disk_path);
  if (!in) {
    return {Finding{logical_path, 0, "io-error",
                    "cannot read '" + disk_path + "'", false, {}}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_text(buffer.str(), logical_path);
}

}  // namespace wrht::simlint
