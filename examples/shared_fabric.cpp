// Shared-fabric contention on the electrical fallback: what multi-tenancy
// actually costs once the fallback fabric stops pretending every tenant
// has private links.
//
// The fallback is configured as an oversubscribed two-level tree
// (hosts -> ToRs -> core).  Two big optical tenants hold the whole
// spectrum; a burst of overflow jobs straddles the two ToRs, so their
// flows meet on the shared uplinks: ONE SharedFabricTimer times every
// in-flight electrical step together under max-min fairness,
// step-completion events are re-scheduled as tenants join (step_retimed
// trace events), each job reports its contention slowdown (shared-fabric
// time / quiet-network time), and the whole-horizon flow replay re-proves
// every step time at the end of the run.
//
//   $ ./examples/shared_fabric [--trace-out=trace.json]
//                              [--metrics-out=metrics.json]
#include <cstdio>
#include <vector>

#include "harness/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"

namespace {

using namespace wrht;

void submit_workload(runtime::CollectiveRuntime& rt) {
  // Two spectrum-hogging optical tenants...
  for (std::uint32_t t = 0; t < 2; ++t) {
    runtime::JobSpec big;
    for (std::uint32_t i = 0; i < 16; ++i) {
      big.participants.push_back(t * 16 + i);
    }
    big.payload = util::megabytes(48);
    big.requested_wavelengths = 8;
    big.min_wavelengths = 8;
    big.name = "tenant-" + std::to_string(t);
    rt.submit(big);
  }
  // ... and six overflow jobs whose participants straddle both ToRs, so
  // every one of their ring steps crosses the shared uplinks.
  for (std::uint32_t b = 0; b < 6; ++b) {
    runtime::JobSpec burst;
    burst.participants = {2 * b, 2 * b + 1, 16 + 2 * b, 16 + 2 * b + 1};
    burst.payload = util::megabytes(6);
    burst.arrival = util::milliseconds(1.0);
    burst.name = "burst-" + std::to_string(b);
    rt.submit(burst);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Shared electrical fallback contention demo.");
  cli.add_flag("trace-out", "", "write a Chrome/Perfetto trace JSON here");
  cli.add_flag("metrics-out", "", "write the metrics registry dump here");
  if (!cli.parse(argc, argv)) return 1;

  obs::MetricsRegistry registry;

  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 16;
  config.electrical.oversubscription = 4.0;
  config.metrics = &registry;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();
  submit_workload(rt);
  const runtime::RuntimeReport report = rt.run();

  std::printf("=== shared two-level fallback, 4:1 oversubscription ===\n%s\n",
              report.to_string().c_str());

  std::printf("%s\n",
              harness::render_substrate_table(
                  {{"optical", report.optical.jobs,
                    report.optical.executions, report.optical.steps,
                    report.optical.makespan.value()},
                   {"electrical", report.electrical.jobs,
                    report.electrical.executions, report.electrical.steps,
                    report.electrical.makespan.value()}})
                  .c_str());

  std::vector<harness::SlowdownRow> rows;
  for (runtime::JobId id = 0; id < rt.num_jobs(); ++id) {
    const runtime::JobRecord& record = rt.record(id);
    rows.push_back({record.spec.name, record.turnaround().value(),
                    record.contention_slowdown});
  }
  std::printf("%s\n", harness::render_slowdown_table(rows).c_str());
  // Only the saturated links: the four ToR uplink directions (ids 0-3, the
  // first edges the two-level builder lays) plus the access links of hosts
  // driven at line rate.
  std::printf("%s\n",
              harness::render_link_utilization(report.electrical_link_peak,
                                               /*threshold=*/0.95)
                  .c_str());

  std::printf("first few shared-fabric retimings in the trace:\n");
  std::uint32_t shown = 0;
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind != sim::TraceKind::kStepRetimed || shown >= 4) continue;
    const auto id = static_cast<runtime::JobId>(e.a);
    std::printf("  t=%-10s %s step %lld of %s moved to %s\n",
                util::to_string(e.time).c_str(),
                sim::trace_kind_name(e.kind), static_cast<long long>(e.b),
                rt.record(id).spec.name.c_str(), e.detail.c_str());
    ++shown;
  }

  double worst = 0.0;
  for (const harness::SlowdownRow& row : rows) {
    if (row.slowdown > worst) worst = row.slowdown;
  }
  bool ok = report.completed == 8 && report.step_retimes > 0 &&
            worst > 1.0 &&
            report.replay_checked_steps == report.electrical.steps;
  std::printf("\ntenants contended on the shared uplinks and every step "
              "time was replay-proven: %s\n",
              ok ? "PASS" : "FAIL");
  if (!obs::export_observability(cli.get_string("trace-out"),
                                 cli.get_string("metrics-out"), rt.trace(),
                                 rt.records(), &registry)) {
    ok = false;
  }
  return ok ? 0 : 1;
}
