// Hybrid execution substrates: when the optical spectrum saturates, tenant
// jobs spill onto the electrical fallback fabric instead of queueing.
//
// Two big tenants take the whole spectrum at t=0.  A burst of small
// latency-sensitive jobs arrives while every wavelength is held:
//
//  * under the default kOpticalOnly placement they wait for a completion;
//  * under kElectricalOverflow they start immediately on exclusive host
//    links of the electrical star cluster, timed by the max-min fair flow
//    simulator — both fabrics on one clock, one trace, one report.
//
// The trace shows the placement verdicts (job_place_optical /
// job_place_electrical) interleaved with the usual job lifecycle events.
//
//   $ ./examples/hybrid_fallback
#include <cstdio>

#include "runtime/runtime.hpp"

namespace {

using namespace wrht;

runtime::RuntimeConfig base_config(runtime::HybridPlacementPolicy placement) {
  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = placement;
  return config;
}

void submit_workload(runtime::CollectiveRuntime& rt) {
  for (std::uint32_t t = 0; t < 2; ++t) {
    runtime::JobSpec big;
    for (std::uint32_t i = 0; i < 16; ++i) {
      big.participants.push_back(t * 16 + i);
    }
    big.payload = util::megabytes(48);
    big.requested_wavelengths = 8;
    big.min_wavelengths = 8;
    big.name = "tenant-" + std::to_string(t);
    rt.submit(big);
  }
  for (std::uint32_t b = 0; b < 4; ++b) {
    runtime::JobSpec small;
    for (std::uint32_t i = 0; i < 8; ++i) {
      small.participants.push_back(b * 8 + i);
    }
    small.payload = util::kilobytes(512);
    small.arrival = util::milliseconds(1.0);
    small.min_wavelengths = 4;
    small.requested_wavelengths = 4;
    small.name = "burst-" + std::to_string(b);
    rt.submit(small);
  }
}

}  // namespace

int main() {
  runtime::CollectiveRuntime queued(
      base_config(runtime::HybridPlacementPolicy::kOpticalOnly));
  submit_workload(queued);
  const runtime::RuntimeReport optical_only = queued.run();

  runtime::CollectiveRuntime hybrid(
      base_config(runtime::HybridPlacementPolicy::kElectricalOverflow));
  hybrid.trace().enable();
  submit_workload(hybrid);
  const runtime::RuntimeReport overflow = hybrid.run();

  std::printf("=== optical-only (burst queues behind the tenants) ===\n%s\n",
              optical_only.to_string().c_str());
  std::printf("=== electrical-overflow (burst spills to host links) ===\n%s\n",
              overflow.to_string().c_str());

  std::printf("placement verdicts in the hybrid trace:\n");
  for (const sim::TraceEvent& e : hybrid.trace().events()) {
    if (e.kind != sim::TraceKind::kJobPlaceOptical &&
        e.kind != sim::TraceKind::kJobPlaceElectrical) {
      continue;
    }
    const auto id = static_cast<runtime::JobId>(e.a);
    std::printf("  t=%-10s %-22s %s\n", util::to_string(e.time).c_str(),
                sim::trace_kind_name(e.kind),
                hybrid.record(id).spec.name.c_str());
  }

  const bool ok = overflow.makespan < optical_only.makespan &&
                  overflow.electrical.jobs == 4 &&
                  overflow.completed == optical_only.completed;
  std::printf("\nburst ran electrically and the makespan improved: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
