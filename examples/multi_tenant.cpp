// Multi-tenant serving: twelve training jobs share one 64-node optical ring
// with an electrical overflow fabric behind it.
//
// Eight medium jobs on disjoint 8-node groups arrive together and run
// CONCURRENTLY, each on its own wavelength band carved out of the shared
// spectrum by the arbiter — together they hold every wavelength.  A burst of
// small same-group gradient buckets arrives while the spectrum is full and
// SPILLS onto the electrical fallback (an oversubscribed two-level tree),
// where the batcher fuses it into a single schedule.  Every spectrum
// reservation goes through the shared per-(span, wavelength, direction) map,
// so the run finishing at all proves zero wavelength conflicts between
// tenants.
//
// The run is fully instrumented: a MetricsRegistry samples queue depth,
// spectrum occupancy, and uplink utilization over simulated time, every job
// carries a deadline the SLO block scores, and the whole timeline can be
// exported as a Chrome/Perfetto trace.
//
//   $ ./examples/multi_tenant --trace-out=trace.json --metrics-out=metrics.json
//   (load trace.json at https://ui.perfetto.dev)
#include <cinttypes>
#include <cstdio>

#include "harness/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace wrht;

  util::CliParser cli(
      "Multi-tenant optical-ring serving with electrical overflow and full "
      "observability export.");
  cli.add_flag("trace-out", "", "write a Chrome/Perfetto trace JSON here");
  cli.add_flag("metrics-out", "", "write the metrics registry dump here");
  if (!cli.parse(argc, argv)) return 1;
  const std::string trace_out = cli.get_string("trace-out");
  const std::string metrics_out = cli.get_string("metrics-out");

  obs::MetricsRegistry registry;

  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;
  // Spectrum overflow spills onto an oversubscribed two-level electrical
  // tree, whose shared ToR uplinks give the uplink-utilization gauge a
  // nonzero story to tell.
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.oversubscription = 4.0;
  config.metrics = &registry;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();

  // Eight tenants, disjoint 8-node groups, all arriving at t=0.  Their
  // 8-wavelength bands fill the spectrum exactly.
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
    runtime::JobSpec spec;
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec.participants.push_back(tenant * 8 + i);
    }
    spec.payload = util::megabytes(16 + 8 * tenant);
    spec.name = "tenant" + std::to_string(tenant);
    spec.deadline = util::milliseconds(400.0);
    rt.submit(spec);
  }

  // A burst of small gradient buckets from one group, arriving while every
  // wavelength is held: the overflow policy places them electrically, and
  // the batcher fuses them into one schedule there (paying the per-step
  // overhead once for all of them).
  for (std::uint32_t i = 0; i < 4; ++i) {
    runtime::JobSpec spec;
    spec.participants = {3, 9, 17, 22, 31, 44};
    spec.payload = util::kilobytes(96);
    spec.arrival = util::milliseconds(1.0);
    spec.name = "bucket" + std::to_string(i);
    spec.deadline = util::milliseconds(50.0);
    rt.submit(spec);
  }

  const runtime::RuntimeReport report = rt.run();
  std::fputs(report.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(harness::render_slo_table(report.slo).c_str(), stdout);

  std::printf("\n%-8s %-10s %-6s %-10s %-10s %-10s %-6s\n", "job", "fabric",
              "band", "admitted", "completed", "turnaround", "batch");
  for (std::size_t i = 0; i < rt.num_jobs(); ++i) {
    const runtime::JobRecord& r = rt.record(static_cast<runtime::JobId>(i));
    std::printf("%-8s %-10s [%2u,%2u) %-10s %-10s %-10s %u\n",
                r.spec.name.c_str(), runtime::substrate_kind_name(r.substrate),
                r.band.base, r.band.base + r.band.width,
                util::to_string(r.admitted).c_str(),
                util::to_string(r.completed).c_str(),
                util::to_string(r.turnaround()).c_str(), r.batch_size);
  }

  bool ok = report.completed == report.submitted && report.rejected == 0 &&
            report.oracle_failures == 0 &&
            report.peak_concurrent_jobs >= 8 && report.batches >= 1 &&
            report.electrical.jobs >= 1 && report.slo.deadline_jobs == 12;
  std::printf("\n%u jobs concurrent at peak, %" PRIu64
              " reservations, 0 conflict aborts, %u spilled electrically: "
              "%s\n",
              report.peak_concurrent_jobs, report.spectrum_reservations,
              report.electrical.jobs, ok ? "PASS" : "FAIL");

  if (!obs::export_observability(trace_out, metrics_out, rt.trace(),
                                 rt.records(), &registry)) {
    ok = false;
  }
  if (!trace_out.empty() && ok) {
    std::printf("trace written to %s (load at https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!metrics_out.empty() && ok) {
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return ok ? 0 : 1;
}
