// Multi-tenant serving: ten training jobs share one 64-node optical ring.
//
// Eight medium jobs on disjoint 8-node groups arrive together and run
// CONCURRENTLY, each on its own wavelength band carved out of the shared
// spectrum by the arbiter.  Two bursts of small same-group jobs arrive
// shortly after and are fused by the batcher into single schedules.  Every
// spectrum reservation goes through the shared per-(span, wavelength,
// direction) map, so the run finishing at all proves zero wavelength
// conflicts between tenants.
//
//   $ ./examples/multi_tenant
#include <cinttypes>
#include <cstdio>

#include "runtime/runtime.hpp"

int main() {
  using namespace wrht;

  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;

  runtime::CollectiveRuntime rt(config);

  // Eight tenants, disjoint 8-node groups, all arriving at t=0.
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
    runtime::JobSpec spec;
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec.participants.push_back(tenant * 8 + i);
    }
    spec.payload = util::megabytes(16 + 8 * tenant);
    spec.name = "tenant" + std::to_string(tenant);
    rt.submit(spec);
  }

  // A burst of small gradient buckets from one group: fused into one
  // schedule, paying the per-step optical overhead once for all of them.
  for (std::uint32_t i = 0; i < 4; ++i) {
    runtime::JobSpec spec;
    spec.participants = {3, 9, 17, 22, 31, 44};
    spec.payload = util::kilobytes(96);
    spec.arrival = util::milliseconds(1.0);
    spec.name = "bucket" + std::to_string(i);
    rt.submit(spec);
  }

  const runtime::RuntimeReport report = rt.run();
  std::fputs(report.to_string().c_str(), stdout);

  std::printf("\n%-8s %-6s %-10s %-10s %-10s %-6s\n", "job", "band",
              "admitted", "completed", "turnaround", "batch");
  for (std::size_t i = 0; i < rt.num_jobs(); ++i) {
    const runtime::JobRecord& r = rt.record(static_cast<runtime::JobId>(i));
    std::printf("%-8s [%2u,%2u) %-10s %-10s %-10s %u\n",
                r.spec.name.c_str(), r.band.base, r.band.base + r.band.width,
                util::to_string(r.admitted).c_str(),
                util::to_string(r.completed).c_str(),
                util::to_string(r.turnaround()).c_str(), r.batch_size);
  }

  const bool ok = report.completed == report.submitted &&
                  report.rejected == 0 && report.oracle_failures == 0 &&
                  report.peak_concurrent_jobs >= 8 && report.batches >= 1;
  std::printf("\n%u jobs concurrent at peak, %" PRIu64
              " reservations, 0 conflict aborts: %s\n",
              report.peak_concurrent_jobs, report.spectrum_reservations,
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
