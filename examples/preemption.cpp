// Priority preemption on a saturated ring.
//
// A batch-training job grabs the ENTIRE spectrum of a 32-node ring.  One
// millisecond later an interactive high-priority all-reduce arrives.  Under
// FairnessPolicy::kPriorityPreempt the runtime does not make it wait for the
// batch job to finish: at the batch job's next step boundary — the natural
// control point the paper's discrete-step schedule provides — the victim
// suspends, surrenders its band, and the urgent job is admitted on the spot.
// When spectrum frees again the victim resumes on a rebuilt remainder
// schedule (core::rebuild_wrht_remainder), re-proven against the functional
// all-reduce oracle before it touches the ring.
//
//   $ ./examples/preemption
#include <cstdio>

#include "runtime/runtime.hpp"

int main() {
  using namespace wrht;

  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.policy = runtime::FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();

  // The batch job: large payload, whole spectrum, background priority.
  runtime::JobSpec batch;
  for (std::uint32_t i = 0; i < 24; ++i) batch.participants.push_back(i);
  batch.payload = util::megabytes(96);
  batch.requested_wavelengths = 16;
  batch.min_wavelengths = 8;
  batch.priority = 0;
  batch.name = "batch";
  const runtime::JobId victim = rt.submit(batch);

  // The interactive job: small, urgent, arrives mid-flight.
  runtime::JobSpec urgent;
  urgent.participants = {2, 5, 9, 14, 20, 27};
  urgent.payload = util::megabytes(2);
  urgent.arrival = util::milliseconds(1.0);
  urgent.min_wavelengths = 4;
  urgent.priority = 9;
  urgent.name = "urgent";
  const runtime::JobId vip = rt.submit(urgent);

  const runtime::RuntimeReport report = rt.run();
  std::fputs(report.to_string().c_str(), stdout);

  std::printf("\n%-8s %-4s %-8s %-10s %-10s %-9s %s\n", "job", "prio",
              "band", "admitted", "completed", "preempted", "state");
  for (std::size_t i = 0; i < rt.num_jobs(); ++i) {
    const runtime::JobRecord& r = rt.record(static_cast<runtime::JobId>(i));
    std::printf("%-8s %-4d [%2u,%2u) %-10s %-10s %-9u %s\n",
                r.spec.name.c_str(), r.spec.priority, r.band.base,
                r.band.base + r.band.width,
                util::to_string(r.admitted).c_str(),
                util::to_string(r.completed).c_str(), r.preemptions,
                runtime::job_state_name(r.state));
  }

  std::printf("\ntimeline:\n");
  for (const sim::TraceEvent& e : rt.trace().events()) {
    std::printf("  t=%-10s %-12s job=%lld band_base=%lld %s\n",
                util::to_string(e.time).c_str(), sim::trace_kind_name(e.kind),
                static_cast<long long>(e.a), static_cast<long long>(e.b),
                e.detail.c_str());
  }

  // The acceptance story: the urgent job was admitted at the instant the
  // victim surrendered its band (one step boundary, not one job), and the
  // victim still completed a correct all-reduce afterwards.
  util::Seconds preempt_time{-1.0};
  util::Seconds vip_admit{-1.0};
  for (const sim::TraceEvent& e : rt.trace().events()) {
    if (e.kind == sim::TraceKind::kJobPreempt &&
        e.a == static_cast<std::int64_t>(victim) &&
        preempt_time < util::Seconds(0.0)) {
      preempt_time = e.time;
    }
    if (e.kind == sim::TraceKind::kJobAdmit &&
        e.a == static_cast<std::int64_t>(vip)) {
      vip_admit = e.time;
    }
  }
  const runtime::JobRecord& v = rt.record(victim);
  const runtime::JobRecord& u = rt.record(vip);
  const bool ok = report.completed == 2 && report.preemptions >= 1 &&
                  report.resumes == report.preemptions &&
                  report.oracle_failures == 0 && vip_admit == preempt_time &&
                  u.completed < v.completed && v.oracle_ok && u.oracle_ok;
  std::printf("\nurgent admitted at the victim's step boundary, victim "
              "resumed and finished correctly: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
