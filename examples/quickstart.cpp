// Quickstart: build a Wrht all-reduce schedule, prove it correct, and time
// it against the optical ring baseline — the whole library in ~60 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "coll/algorithms.hpp"
#include "coll/executor.hpp"
#include "harness/fig2.hpp"
#include "wrht/analysis.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

int main() {
  using namespace wrht;

  // A 64-GPU optical ring with 8 usable wavelengths per waveguide.
  const std::uint32_t num_nodes = 64;
  core::WrhtParams params;
  params.num_wavelengths = 8;

  // 1. Build the schedule (the paper's hierarchical tree + all-to-all).
  const core::WrhtBuild build = core::build_wrht(num_nodes, params);
  std::fputs(core::analyze(build, util::megabytes(100)).report().c_str(),
             stdout);

  // 2. Prove it computes an all-reduce: execute it on real payload vectors
  //    and compare every node's result against the element-wise sum.
  const bool correct = coll::FunctionalExecutor::verify_allreduce(
      build.annotated.schedule, /*payload_len=*/256);
  std::printf("functional check      : %s\n", correct ? "PASS" : "FAIL");

  // 3. Time it on the optical ring simulator against the single-wavelength
  //    ring all-reduce (what you would run if you ported NCCL's ring as-is).
  optical::OpticalParams optical;
  optical.wdm.num_wavelengths = 8;
  const util::Bytes gradient = util::megabytes(100);
  const double wrht_time =
      core::run_on_optical(build.annotated, optical, gradient).total.value();

  harness::ExperimentConfig config;
  config.optical = optical;
  const double ring_time =
      harness::allreduce_time(harness::Algo::kORing, num_nodes, gradient,
                              config)
          .value();

  std::printf("wrht                  : %s\n",
              util::to_string(util::Seconds(wrht_time)).c_str());
  std::printf("optical ring baseline : %s\n",
              util::to_string(util::Seconds(ring_time)).c_str());
  std::printf("speedup               : %.2fx\n", ring_time / wrht_time);
  return correct ? 0 : 1;
}
