// End-to-end data-parallel training iteration: forward, backward with
// bucketed gradients, and overlapped all-reduce — with the communication
// times coming from the Wrht optical model vs. the electrical ring.
// Reproduces the paper's motivation numbers (communication at 50-90% of
// iteration time on electrical networks) and shows what the optical
// schedule does to them.
//
//   $ ./examples/training_iteration --model resnet50 --nodes 256
#include <cstdio>

#include "coll/cost_model.hpp"
#include "dnn/catalog.hpp"
#include "dnn/training.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/time_model.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli("Simulate one training iteration with overlap.");
  cli.add_flag("model", "resnet50", "alexnet|vgg16|resnet50|googlenet");
  cli.add_flag("nodes", "256", "number of GPUs");
  cli.add_flag("fwd-ms", "40", "forward pass time, milliseconds");
  cli.add_flag("bwd-ms", "80", "backward pass time, milliseconds");
  cli.add_flag("bucket-mb", "25", "gradient bucket capacity, MiB");
  if (!cli.parse(argc, argv)) return 1;

  dnn::Model model = dnn::resnet50();
  for (const dnn::Model& candidate : dnn::paper_models()) {
    std::string lower = candidate.name();
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == cli.get_string("model")) model = candidate;
  }
  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));

  dnn::TrainingParams training;
  training.forward_time = util::milliseconds(cli.get_double("fwd-ms"));
  training.backward_time = util::milliseconds(cli.get_double("bwd-ms"));
  training.bucketing.capacity =
      util::mebibytes(static_cast<std::uint64_t>(cli.get_int("bucket-mb")));

  // Three communication backends for the same iteration.
  core::WrhtParams wrht_params;
  const optical::OpticalParams optical;
  const auto wrht_comm = [&](util::Bytes bytes) {
    return core::wrht_time_formula(nodes, bytes, optical, wrht_params);
  };
  const auto oring_comm = [&](util::Bytes bytes) {
    return core::optical_ring_time_formula(nodes, bytes, optical);
  };
  const coll::AlphaBetaParams electrical{util::microseconds(50.0),
                                         util::gbps(10.0)};
  const auto ering_comm = [&](util::Bytes bytes) {
    return coll::ring_allreduce_closed_form(nodes, bytes, electrical);
  };

  std::printf("%s on %u GPUs, %s gradients, buckets of %s\n\n",
              model.name().c_str(), nodes,
              util::to_string(model.gradient_bytes()).c_str(),
              util::to_string(training.bucketing.capacity).c_str());

  util::Table table({"backend", "overlap", "iteration", "exposed comm",
                     "comm fraction", "buckets"});
  struct Backend {
    const char* name;
    dnn::AllReduceTimeFn fn;
  };
  const Backend backends[] = {
      {"electrical E-Ring", ering_comm},
      {"optical O-Ring", oring_comm},
      {"optical WRHT", wrht_comm},
  };
  for (const Backend& backend : backends) {
    for (const bool overlap : {false, true}) {
      dnn::TrainingParams params = training;
      params.overlap = overlap;
      const dnn::IterationTimeline timeline =
          dnn::simulate_iteration(model, params, backend.fn);
      table.add_row(
          {backend.name, overlap ? "yes" : "no",
           util::to_string(timeline.total_time),
           util::to_string(timeline.exposed_comm_time),
           util::format_double(dnn::comm_fraction(timeline) * 100.0, 1) + "%",
           std::to_string(timeline.num_buckets)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe electrical rows reproduce the paper's motivation (comm takes "
      "most of the iteration\nat scale); the WRHT rows show the schedule "
      "pushing the iteration back toward compute-bound.\n");
  return 0;
}
