// Capacity planning: how many wavelengths does a deployment need to hit a
// target all-reduce step count (and what does each choice cost in time)?
// The question an operator sizing a TeraRack-style fabric actually asks.
//
//   $ ./examples/wavelength_planner --nodes 1024 --model vgg16
#include <cstdio>

#include "dnn/catalog.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/time_model.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli(
      "Wavelengths needed per target Wrht step count, with time.");
  cli.add_flag("nodes", "1024", "number of GPUs on the ring");
  cli.add_flag("model", "vgg16", "alexnet|vgg16|resnet50|googlenet");
  if (!cli.parse(argc, argv)) return 1;

  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  const std::string name = cli.get_string("model");
  util::Bytes payload;
  for (const dnn::Model& model : dnn::paper_models()) {
    std::string lower = model.name();
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) payload = model.gradient_bytes();
  }
  if (payload.count() == 0) {
    std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
    return 1;
  }

  std::printf("Wavelength plan for N=%u, gradient %s\n\n", nodes,
              util::to_string(payload).c_str());

  util::Table table({"steps target", "min wavelengths", "group size m",
                     "comm time", "aggregate waveguide"});
  std::uint32_t previous_steps = 0;
  for (std::uint32_t w = 1; w <= 4096; w *= 2) {
    core::WrhtParams params;
    params.num_wavelengths = w;
    const std::uint32_t steps =
        core::predicted_steps(nodes, core::default_group_size(nodes, w), w);
    if (steps == previous_steps) continue;  // no improvement at this w
    previous_steps = steps;

    // Binary-search the smallest w achieving this step count.
    std::uint32_t lo = w / 2 + 1;
    std::uint32_t hi = w;
    while (lo < hi) {
      const std::uint32_t mid = (lo + hi) / 2;
      if (core::predicted_steps(nodes,
                                core::default_group_size(nodes, mid),
                                mid) <= steps) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }

    core::WrhtParams exact;
    exact.num_wavelengths = lo;
    const core::WrhtBuild build = core::build_wrht(nodes, exact);
    optical::OpticalParams optical;
    optical.wdm.num_wavelengths =
        std::max(lo, build.annotated.wavelengths_required);
    const double t =
        core::run_on_optical(build.annotated, optical, payload).total.value();
    table.add_row(
        {std::to_string(steps), std::to_string(lo),
         std::to_string(build.group_size_m),
         util::to_string(util::Seconds(t)),
         util::to_string(optical.wdm.wavelength_bandwidth *
                         static_cast<double>(lo))});
    if (steps <= 1) break;
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: each row is the cheapest spectrum that reaches that step "
      "count;\nthe time column shows the diminishing returns past 3 steps.\n");
  return 0;
}
