// Tour of the collective-primitive library: run broadcast, reduce, scatter,
// gather, all-gather and reduce-scatter on both substrates, verifying each
// against its oracle before timing it.  Demonstrates the full public API
// beyond all-reduce.
//
//   $ ./examples/collective_zoo --nodes 32 --payload-mb 64
#include <cstdio>
#include <functional>

#include "coll/oracle.hpp"
#include "coll/primitives.hpp"
#include "elec/schedule_runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "wrht/executor.hpp"
#include "wrht/primitives.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli("Run every collective primitive on both substrates.");
  cli.add_flag("nodes", "32", "number of nodes");
  cli.add_flag("payload-mb", "64", "payload size in MB");
  cli.add_flag("wavelengths", "16", "optical wavelengths per waveguide");
  cli.add_flag("root", "0", "root node for rooted collectives");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(cli.get_int("nodes"));
  const auto root = static_cast<coll::NodeId>(cli.get_int("root")) % n;
  const util::Bytes payload =
      util::megabytes(static_cast<std::uint64_t>(cli.get_int("payload-mb")));
  const auto w = static_cast<std::uint32_t>(cli.get_int("wavelengths"));

  const elec::ElectricalCluster cluster =
      elec::ElectricalCluster::star(n, elec::ElectricalParams{});
  const topo::RingTopology ring(n);
  optical::OpticalParams optical;
  optical.wdm.num_wavelengths = std::max(w, 64u);  // generous for annotation

  struct Entry {
    const char* name;
    coll::Schedule schedule;
    std::function<coll::OracleResult()> oracle;
  };
  const std::size_t len = std::max<std::size_t>(4 * n, 128);
  std::vector<Entry> zoo;
  zoo.push_back({"broadcast (binomial)", coll::broadcast_binomial(n, root),
                 [&] {
                   return coll::Oracle::verify_broadcast(
                       coll::broadcast_binomial(n, root), root, len);
                 }});
  zoo.push_back({"broadcast (pipelined ring)",
                 coll::broadcast_ring_pipelined(n, root), [&] {
                   return coll::Oracle::verify_broadcast(
                       coll::broadcast_ring_pipelined(n, root), root, len);
                 }});
  zoo.push_back({"reduce (binomial)", coll::reduce_binomial(n, root), [&] {
                   return coll::Oracle::verify_reduce(
                       coll::reduce_binomial(n, root), root, len);
                 }});
  zoo.push_back({"scatter (binomial)", coll::scatter_binomial(n, root), [&] {
                   return coll::Oracle::verify_scatter(
                       coll::scatter_binomial(n, root), root, len);
                 }});
  zoo.push_back({"gather (binomial)", coll::gather_binomial(n, root), [&] {
                   return coll::Oracle::verify_gather(
                       coll::gather_binomial(n, root), root, len);
                 }});
  zoo.push_back({"allgather (ring)", coll::allgather_ring(n), [&] {
                   return coll::Oracle::verify_allgather(
                       coll::allgather_ring(n), len);
                 }});
  zoo.push_back({"allgather (bruck)", coll::allgather_bruck(n), [&] {
                   return coll::Oracle::verify_allgather(
                       coll::allgather_bruck(n), len);
                 }});
  zoo.push_back({"reduce-scatter (ring)", coll::reduce_scatter_ring(n), [&] {
                   return coll::Oracle::verify_reduce_scatter(
                       coll::reduce_scatter_ring(n), len);
                 }});

  std::printf("Collective zoo — N=%u, root=%u, payload %s\n\n", n, root,
              util::to_string(payload).c_str());
  util::Table table(
      {"primitive", "steps", "verified", "electrical", "optical ring"});
  for (const Entry& entry : zoo) {
    const coll::OracleResult verdict = entry.oracle();
    const double electrical =
        elec::run_on_electrical(entry.schedule, cluster, payload)
            .total.value();
    std::string optical_time = "(needs more lambdas)";
    if (const auto annotated = core::annotate_on_ring(
            entry.schedule, ring, optical.wdm.num_wavelengths)) {
      optical_time = util::to_string(util::Seconds(
          core::run_on_optical(*annotated, optical, payload).total.value()));
    }
    table.add_row({entry.name, std::to_string(entry.schedule.num_steps()),
                   verdict.ok ? "PASS" : "FAIL",
                   util::to_string(util::Seconds(electrical)), optical_time});
  }

  // The Wrht-native rooted primitives.
  core::WrhtParams wrht_params;
  wrht_params.num_wavelengths = w;
  const core::WrhtReduceBuild wrht_reduce =
      core::build_wrht_reduce(n, wrht_params);
  const core::WrhtBroadcastBuild wrht_bcast =
      core::build_wrht_broadcast(n, root, wrht_params);
  const auto reduce_ok =
      coll::Oracle::verify_reduce(wrht_reduce.annotated.schedule,
                                  wrht_reduce.root, len);
  const auto bcast_ok = coll::Oracle::verify_broadcast(
      wrht_bcast.annotated.schedule, root, len);
  table.add_separator();
  table.add_row(
      {"wrht reduce", std::to_string(wrht_reduce.annotated.schedule.num_steps()),
       reduce_ok.ok ? "PASS" : "FAIL", "-",
       util::to_string(util::Seconds(
           core::run_on_optical(wrht_reduce.annotated, optical, payload)
               .total.value()))});
  table.add_row(
      {"wrht broadcast",
       std::to_string(wrht_bcast.annotated.schedule.num_steps()),
       bcast_ok.ok ? "PASS" : "FAIL", "-",
       util::to_string(util::Seconds(
           core::run_on_optical(wrht_bcast.annotated, optical, payload)
               .total.value()))});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
