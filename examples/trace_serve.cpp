// Trace-driven serving: stream a generated or recorded submission trace
// into the runtime without ever materializing the workload.
//
// Three ways to drive it:
//
//   generate + serve (default)   a seeded workload generator feeds
//                                CollectiveRuntime::serve() directly
//   generate + record + replay   --record=FILE writes the trace to disk
//                                first, then serves by REPLAYING the file —
//                                proving the on-disk round trip preserves
//                                every spec
//   replay only                  --trace-in=FILE serves a trace recorded
//                                earlier (format from --format)
//
// Every path ends in the same place: a RuntimeReport, the SLO table, and —
// optionally — a Chrome/Perfetto trace of the whole run.
//
//   $ ./examples/trace_serve --jobs=5000 --arrivals=bursty --rate=2000
//   $ ./examples/trace_serve --jobs=2000 --record=trace.jsonl
//   $ ./examples/trace_serve --trace-in=trace.jsonl --trace-out=perfetto.json
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace wrht;

  util::CliParser cli(
      "Serve a generated or recorded submission trace through the streaming "
      "runtime frontend.");
  cli.add_flag("jobs", "2000", "jobs to generate (ignored with --trace-in)");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("arrivals", "poisson", "arrival process: poisson|diurnal|bursty");
  cli.add_flag("rate", "2000", "mean arrival rate, jobs per simulated second");
  cli.add_flag("format", "jsonl", "trace file format: jsonl|csv");
  cli.add_flag("trace-in", "", "replay this recorded trace instead of generating");
  cli.add_flag("record", "", "write the generated trace here, then replay it");
  cli.add_flag("trace-out", "", "write a Chrome/Perfetto trace JSON here");
  cli.add_flag("metrics-out", "", "write the metrics registry dump here");
  if (!cli.parse(argc, argv)) return 1;

  const std::string trace_in = cli.get_string("trace-in");
  const std::string record = cli.get_string("record");
  const std::string trace_out = cli.get_string("trace-out");
  const std::string metrics_out = cli.get_string("metrics-out");

  const std::optional<workload::TraceFormat> format =
      workload::parse_trace_format(cli.get_string("format"));
  if (!format) {
    std::fprintf(stderr, "unknown --format '%s' (want jsonl|csv)\n",
                 cli.get_string("format").c_str());
    return 1;
  }

  workload::WorkloadConfig wconfig;
  wconfig.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  wconfig.num_jobs = static_cast<std::uint64_t>(cli.get_int("jobs"));
  wconfig.ring_size = 64;
  wconfig.mean_rate = cli.get_double("rate");
  const std::optional<workload::ArrivalProcess> arrivals =
      workload::parse_arrival_process(cli.get_string("arrivals"));
  if (!arrivals) {
    std::fprintf(stderr, "unknown --arrivals '%s' (want poisson|diurnal|bursty)\n",
                 cli.get_string("arrivals").c_str());
    return 1;
  }
  wconfig.arrivals = *arrivals;

  // Record first if asked: the serve below then replays the file, so what
  // the runtime sees is exactly what a later replay would see.
  if (trace_in.empty() && !record.empty()) {
    workload::WorkloadGenerator gen(wconfig);
    std::ofstream out(record);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", record.c_str());
      return 1;
    }
    const std::uint64_t written =
        workload::record_trace(gen, out, *format);
    std::printf("recorded %lu jobs to %s (%s)\n",
                static_cast<unsigned long>(written), record.c_str(),
                workload::trace_format_name(*format));
  }

  obs::MetricsRegistry registry;
  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;
  config.batcher.enabled = false;
  config.metrics = &registry;

  runtime::CollectiveRuntime rt(config);
  if (!trace_out.empty()) rt.trace().enable();

  const std::string replay_path = !trace_in.empty() ? trace_in : record;
  runtime::RuntimeReport report;
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s for reading\n", replay_path.c_str());
      return 1;
    }
    workload::TraceReader reader(in, *format);
    report = rt.serve(reader);
    std::printf("replayed %lu jobs from %s\n\n",
                static_cast<unsigned long>(reader.read()),
                replay_path.c_str());
  } else {
    workload::WorkloadGenerator gen(wconfig);
    report = rt.serve(gen);
    std::printf("served %lu generated jobs (%s arrivals, seed %lu)\n\n",
                static_cast<unsigned long>(wconfig.num_jobs),
                workload::arrival_process_name(wconfig.arrivals),
                static_cast<unsigned long>(wconfig.seed));
  }

  std::fputs(report.to_string().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(harness::render_slo_table(report.slo).c_str(), stdout);

  bool ok = report.completed + report.rejected == report.submitted &&
            report.oracle_failures == 0 && report.completed > 0;
  if (!obs::export_observability(trace_out, metrics_out, rt.trace(),
                                 rt.records(), &registry)) {
    ok = false;
  }
  if (!trace_out.empty() && ok) {
    std::printf("trace written to %s (load at https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  std::printf("\nserved to completion: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
