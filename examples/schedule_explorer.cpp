// Dump a Wrht schedule step by step: every transfer with its ring arc,
// direction, and wavelength, plus the DES trace of one execution.  The tool
// for understanding (or debugging) what the builder produced.
//
//   $ ./examples/schedule_explorer --nodes 16 --wavelengths 4
#include <cstdio>

#include "util/cli.hpp"
#include "wrht/analysis.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli("Print a Wrht schedule transfer by transfer.");
  cli.add_flag("nodes", "16", "number of GPUs on the ring");
  cli.add_flag("wavelengths", "4", "wavelengths per waveguide");
  cli.add_flag("group-size", "0", "force group size m (0 = automatic)");
  cli.add_flag("trace", "false", "also print the DES event trace");
  if (!cli.parse(argc, argv)) return 1;

  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));
  core::WrhtParams params;
  params.num_wavelengths =
      static_cast<std::uint32_t>(cli.get_int("wavelengths"));
  if (cli.get_int("group-size") > 0) {
    params.forced_group_size =
        static_cast<std::uint32_t>(cli.get_int("group-size"));
  }

  const core::WrhtBuild build = core::build_wrht(nodes, params);
  std::fputs(core::analyze(build, util::megabytes(10)).report().c_str(),
             stdout);
  std::printf("\n");

  const auto& schedule = build.annotated.schedule;
  for (std::size_t s = 0; s < schedule.num_steps(); ++s) {
    const bool is_reduce = s < build.reduce_levels.size();
    const bool is_merge =
        build.merged_with_all_to_all && s == build.reduce_levels.size();
    std::printf("step %zu (%s, %u wavelengths):\n", s,
                is_merge ? "all-to-all merge"
                         : (is_reduce ? "reduce level" : "broadcast level"),
                build.annotated.lambda_per_step[s]);
    const auto& transfers = schedule.steps()[s].transfers;
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      const coll::Transfer& t = transfers[i];
      const core::PathAssignment& path = build.annotated.paths[s][i];
      std::printf("  %3u -> %3u  %s  %s  %u hops  lambda %u\n", t.src, t.dst,
                  t.op == coll::TransferOp::kReduce ? "reduce" : "copy  ",
                  topo::direction_name(path.arc.direction), path.arc.length,
                  path.lambdas[0]);
    }
  }

  if (cli.get_bool("trace")) {
    optical::OpticalParams optical;
    optical.wdm.num_wavelengths =
        std::max(params.num_wavelengths, build.annotated.wavelengths_required);
    optical::OpticalRingNetwork network(nodes, optical);
    network.trace().enable();
    core::run_on_optical(build.annotated, network, util::megabytes(10));
    std::printf("\nDES trace:\n%s", network.trace().to_string().c_str());
  }
  return 0;
}
