// Elastic failover through the runtime's REAL failure API: node losses are
// fault events on the sim clock, detected at BSP step boundaries and
// resolved through the same typed renegotiation entry point preemption and
// elastic resize use.
//
// Part 1 scripts two transceiver losses mid-collective and shows the
// survivor rebuild: the tenant keeps its band, the failed nodes are
// stripped from the delivery set (kEvict) or the remainder restarts among
// the survivors (kRestart), and the composite prefix+remainder oracle
// re-proves every renegotiated schedule inside the runtime.
//
// Part 2 turns on chaos mode — a seeded FaultInjector riding a seeded
// workload — and runs the SAME configuration twice, comparing the full
// event traces: fault injection is deterministic per seed, so two runs are
// t-identical event for event.
//
//   $ ./examples/elastic_failover --nodes 32 --payload-mb 100
#include <cstdio>
#include <vector>

#include "runtime/faults.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wrht;

/// The whole trace flattened to comparable tuples (time, kind, a, b,
/// detail) — two runs are t-identical iff these match exactly.
std::vector<std::tuple<util::Seconds, sim::TraceKind, std::int64_t,
                       std::int64_t, std::string>>
flatten(const sim::Trace& trace) {
  std::vector<std::tuple<util::Seconds, sim::TraceKind, std::int64_t,
                         std::int64_t, std::string>>
      out;
  out.reserve(trace.events().size());
  for (const sim::TraceEvent& e : trace.events()) {
    out.emplace_back(e.time, e.kind, e.a, e.b, e.detail);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli(
      "Survive node failures via fault-event renegotiation, twice over.");
  cli.add_flag("nodes", "32", "ring size");
  cli.add_flag("wavelengths", "16", "wavelengths per waveguide");
  cli.add_flag("payload-mb", "100", "gradient size in MB");
  cli.add_flag("seed", "42", "chaos + workload seed for part 2");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(cli.get_int("nodes"));
  const auto wavelengths =
      static_cast<std::uint32_t>(cli.get_int("wavelengths"));
  const util::Bytes payload =
      util::megabytes(static_cast<std::uint64_t>(cli.get_int("payload-mb")));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  runtime::RuntimeConfig config;
  config.ring_size = n;
  config.optical.wdm.num_wavelengths = wavelengths;
  config.batcher.enabled = false;

  runtime::JobSpec gradient;
  for (std::uint32_t i = 0; i < n - n / 4; ++i) {
    gradient.participants.push_back(i);
  }
  gradient.payload = payload;
  gradient.name = "gradient all-reduce";

  // ---- part 1: scripted node losses mid-collective ---------------------
  // A calibration run (no faults) finds the makespan, so the two losses
  // land squarely inside the collective — one per third.
  util::Seconds calm_makespan;
  {
    runtime::CollectiveRuntime calm(config);
    calm.submit(gradient);
    calm_makespan = calm.run().makespan;
  }

  const topo::NodeId first_victim = 7;
  const topo::NodeId second_victim = 13;
  runtime::ScriptedFaultSource script({
      {runtime::FaultDomain::kTransceiver, first_victim,
       util::Seconds(calm_makespan.value() / 3.0), util::Seconds(0.0)},
      {runtime::FaultDomain::kTransceiver, second_victim,
       util::Seconds(calm_makespan.value() * 2.0 / 3.0), util::Seconds(0.0)},
  });
  config.faults = &script;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();
  const runtime::JobId id = rt.submit(gradient);
  const runtime::RuntimeReport report = rt.run();
  config.faults = nullptr;

  std::printf("scripted failover — ring of %u, %s gradient, %u wavelengths\n",
              n, util::to_string(payload).c_str(), wavelengths);
  std::printf("fault-free makespan %s; transceivers %u and %u fail at 1/3 "
              "and 2/3 of it\n\n",
              util::to_string(calm_makespan).c_str(), first_victim,
              second_victim);

  util::Table timeline({"t", "event", "detail"});
  for (const sim::TraceEvent& e : rt.trace().events()) {
    switch (e.kind) {
      case sim::TraceKind::kNodeFail:
        timeline.add_row({util::to_string(e.time), "node_fail",
                          "node " + std::to_string(e.a)});
        break;
      case sim::TraceKind::kJobResize:
        timeline.add_row({util::to_string(e.time), "rebuilt remainder",
                          "band [" + std::to_string(e.b) + ", +" + e.detail +
                              ")"});
        break;
      case sim::TraceKind::kJobAdmit:
      case sim::TraceKind::kJobResume:
      case sim::TraceKind::kJobComplete:
        timeline.add_row({util::to_string(e.time),
                          sim::trace_kind_name(e.kind), e.detail});
        break;
      default:
        break;
    }
  }
  std::fputs(timeline.render().c_str(), stdout);

  const runtime::JobRecord& record = rt.record(id);
  std::printf(
      "\nsurvivor rebuilds: %u eviction(s) + %u restart(s), mttr %s, "
      "goodput %.3f\njob %s, oracle-proven: %s\n\n",
      report.faults.evictions, report.faults.restarts,
      util::to_string(report.faults.mttr()).c_str(), report.goodput(),
      runtime::job_state_name(record.state),
      record.oracle_ok ? "yes" : "NO");

  const bool part1_ok = record.state == runtime::JobState::kDone &&
                        record.oracle_ok && report.oracle_failures == 0 &&
                        report.faults.disrupted_executions >= 1 &&
                        report.faults.evictions + report.faults.restarts >= 1;

  // ---- part 2: chaos mode, twice — t-identical traces ------------------
  workload::WorkloadConfig chaos;
  chaos.seed = seed;
  chaos.num_jobs = 60;
  chaos.ring_size = n;
  chaos.mean_rate = 400.0;
  chaos.fault_horizon = util::Seconds(5.0);
  chaos.transceiver_mtbf = util::Seconds(0.05);
  chaos.node_mtbf = util::Seconds(0.08);
  chaos.wavelength_mtbf = util::Seconds(0.08);
  chaos.fault_mttr = util::Seconds(0.01);
  chaos.fault_num_wavelengths = wavelengths;

  auto chaos_run = [&]() {
    workload::WorkloadGenerator jobs(chaos);
    runtime::FaultInjector injector = jobs.make_fault_injector();
    runtime::RuntimeConfig cfg = config;
    cfg.faults = &injector;
    runtime::CollectiveRuntime chaos_rt(cfg);
    chaos_rt.trace().enable();
    const runtime::RuntimeReport chaos_report = chaos_rt.serve(jobs);
    return std::make_tuple(chaos_report, flatten(chaos_rt.trace()),
                           chaos_rt.completion_order());
  };
  const auto [report_a, trace_a, order_a] = chaos_run();
  const auto [report_b, trace_b, order_b] = chaos_run();

  std::printf("chaos mode — %llu jobs under seeded fault injection "
              "(seed %llu):\n",
              static_cast<unsigned long long>(chaos.num_jobs),
              static_cast<unsigned long long>(seed));
  std::printf(
      "  %u faults injected, %u repairs, %u disruptions -> %u evictions + "
      "%u restarts,\n  %u fault preemptions, %u killed; mttr %s, goodput "
      "%.3f\n",
      report_a.faults.injected, report_a.faults.repairs,
      report_a.faults.disrupted_executions, report_a.faults.evictions,
      report_a.faults.restarts, report_a.faults.fault_preemptions,
      report_a.faults.killed_jobs, util::to_string(report_a.faults.mttr()).c_str(),
      report_a.goodput());

  const bool identical = trace_a == trace_b && order_a == order_b;
  std::printf(
      "  two runs, %zu trace events each: %s\n",
      trace_a.size(),
      identical ? "t-identical event for event" : "DIVERGED");

  const bool part2_ok = identical && report_a.faults.injected > 0 &&
                        report_a.oracle_failures == 0 &&
                        report_a.completed + report_a.rejected +
                                report_a.faults.killed_jobs ==
                            report_a.submitted;
  const bool ok = part1_ok && part2_ok;
  std::printf("\n%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
