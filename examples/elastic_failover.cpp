// Elastic failover: run all-reduce iterations on the optical ring while
// nodes fail; after every failure the Wrht schedule is rebuilt over the
// survivors (failed nodes stay physically on the ring as pass-through) and
// each rebuilt schedule is re-verified before use.  Shows rebuild cost,
// step counts, and per-iteration communication time as the world shrinks.
//
//   $ ./examples/elastic_failover --nodes 64 --failures 6
#include <chrono>
#include <cstdio>
#include <numeric>

#include "coll/oracle.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli("Survive node failures by rebuilding the schedule.");
  cli.add_flag("nodes", "64", "initial ring size");
  cli.add_flag("failures", "6", "number of node failures to inject");
  cli.add_flag("wavelengths", "16", "wavelengths per waveguide");
  cli.add_flag("payload-mb", "100", "gradient size in MB");
  cli.add_flag("seed", "42", "failure-order seed");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::uint32_t>(cli.get_int("nodes"));
  const auto failures = static_cast<std::uint32_t>(cli.get_int("failures"));
  const util::Bytes payload =
      util::megabytes(static_cast<std::uint64_t>(cli.get_int("payload-mb")));

  core::WrhtParams params;
  params.num_wavelengths =
      static_cast<std::uint32_t>(cli.get_int("wavelengths"));
  optical::OpticalParams optical;
  optical.wdm.num_wavelengths = params.num_wavelengths;

  std::vector<topo::NodeId> alive(n);
  std::iota(alive.begin(), alive.end(), 0);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  std::printf("Elastic Wrht — ring of %u, %s gradients, %u wavelengths\n\n",
              n, util::to_string(payload).c_str(), params.num_wavelengths);
  util::Table table({"event", "survivors", "steps", "verified",
                     "rebuild time", "all-reduce time"});

  for (std::uint32_t round = 0; round <= failures; ++round) {
    if (round > 0) {
      const std::size_t victim = rng.next_below(alive.size());
      std::printf("node %u failed\n", alive[victim]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    // simlint-allow(wallclock): deliberately times the host-side rebuild
    // computation itself; this never feeds the simulated clock.
    const auto wall_start = std::chrono::steady_clock::now();
    const core::WrhtBuild build = core::build_wrht_among(alive, n, params);
    // simlint-allow(wallclock): same host-side rebuild timing as above.
    const auto wall_end = std::chrono::steady_clock::now();
    const double rebuild_us =
        std::chrono::duration<double, std::micro>(wall_end - wall_start)
            .count();

    const coll::OracleResult verdict = coll::Oracle::verify_allreduce_among(
        build.annotated.schedule, alive, 64);
    const double comm =
        core::run_on_optical(build.annotated, optical, payload).total.value();

    table.add_row({round == 0 ? "initial" : "failure " + std::to_string(round),
                   std::to_string(alive.size()),
                   std::to_string(build.annotated.schedule.num_steps()),
                   verdict.ok ? "PASS" : "FAIL",
                   util::to_string(util::microseconds(rebuild_us)),
                   util::to_string(util::Seconds(comm))});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nRebuilds are microseconds (schedule construction is O(N)); failed "
      "nodes stay on the ring\nas pass-through and the tree re-forms around "
      "them.\n");
  return 0;
}
