// Electrical renegotiation: BSP step boundaries are preemption points too.
//
// Part 1 drives the electrical substrate directly to show the mechanics:
// a tenant is placed on its participants' hosts, suspended at a step
// boundary (hosts surrendered), a blocker takes some of those hosts, and a
// kResume renegotiation re-places the remainder on a DIFFERENT host set —
// the schedule remap that carries a compact collective onto any free hosts.
//
// Part 2 runs the same story end-to-end through the multi-tenant runtime
// on the shared two-level fabric: a background electrically-pinned tenant
// is evicted at its next step boundary when an urgent pinned arrival needs
// its hosts, resumes immediately on free hosts across the fabric while the
// urgent job still runs, and the whole interleaving is re-proven by both
// oracles (the composite all-reduce oracle over the executed prefix plus
// remapped remainder, and the whole-horizon flow replay of every logged
// route).
//
//   $ ./examples/electrical_preemption
#include <cstdio>

#include "runtime/runtime.hpp"
#include "runtime/substrate.hpp"

namespace {

using namespace wrht;

void print_hosts(const char* label,
                 const runtime::SubstrateExecution& plan) {
  std::printf("%-22s", label);
  for (const topo::NodeId host : plan.hosts()) std::printf(" %2u", host);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace wrht;

  // ---- part 1: the substrate-level mechanics --------------------------
  std::printf("substrate mechanics: suspend at a boundary, resume remapped\n");
  const runtime::ElectricalFallbackConfig fallback;
  const std::unique_ptr<runtime::ExecutionSubstrate> sub =
      runtime::make_electrical_substrate(16, fallback);

  std::unique_ptr<runtime::SubstrateExecution> tenant =
      sub->place({0, 1, 2, 3}, util::megabytes(8), 1);
  print_hosts("placed on hosts", *tenant);

  util::Seconds clock{0.0};
  const runtime::StepTiming first = sub->time_step(*tenant, 0, clock);
  clock = first.end;  // one executed step; the boundary is the preemption point
  sub->release(*tenant, clock);
  std::printf("%-22s step 0 done at %s, hosts surrendered\n", "suspended",
              util::to_string(clock).c_str());

  // An urgent tenant takes two of the original hosts...
  std::unique_ptr<runtime::SubstrateExecution> urgent =
      sub->place({2, 3, 8, 9}, util::megabytes(2), 1);
  print_hosts("urgent tenant on", *urgent);

  // ...so the resume remaps the remainder onto the lowest free hosts.
  runtime::RenegotiationOutcome outcome = sub->renegotiate(
      tenant.get(), runtime::RenegotiationRequest::resume(1, 1, 1));
  if (!outcome.accepted()) {
    std::printf("resume unexpectedly refused\n");
    return 1;
  }
  const std::unique_ptr<runtime::SubstrateExecution> resumed =
      std::move(outcome.plan);
  print_hosts("resumed remapped on", *resumed);
  std::printf("%-22s %zu of %zu steps remain\n\n", "remainder",
              resumed->num_steps(), tenant->num_steps());

  // ---- part 2: end-to-end through the runtime -------------------------
  std::printf("runtime end-to-end on the shared two-level fabric\n");
  runtime::RuntimeConfig config;
  config.ring_size = 16;
  config.optical.wdm.num_wavelengths = 8;
  config.policy = runtime::FairnessPolicy::kPriorityPreempt;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 8;
  config.electrical.oversubscription = 2.0;

  runtime::CollectiveRuntime rt(config);
  rt.trace().enable();

  runtime::JobSpec batch;
  batch.participants = {0, 1, 2, 3, 8, 9, 10, 11};  // straddles both ToRs
  batch.payload = util::megabytes(48);
  batch.pin = runtime::SubstratePin::kElectricalOnly;
  batch.priority = 0;
  batch.name = "batch";
  const runtime::JobId victim = rt.submit(batch);

  runtime::JobSpec interactive;
  interactive.participants = {2, 3, 4, 5};  // overlaps the batch's hosts
  interactive.payload = util::megabytes(1);
  interactive.arrival = util::milliseconds(4.0);
  interactive.pin = runtime::SubstratePin::kElectricalOnly;
  interactive.priority = 9;
  interactive.name = "urgent";
  const runtime::JobId vip = rt.submit(interactive);

  const runtime::RuntimeReport report = rt.run();
  std::fputs(report.to_string().c_str(), stdout);

  std::printf("\njob lifecycle events:\n");
  for (const sim::TraceEvent& event : rt.trace().events()) {
    switch (event.kind) {
      case sim::TraceKind::kJobAdmit:
      case sim::TraceKind::kJobPreempt:
      case sim::TraceKind::kJobResume:
      case sim::TraceKind::kJobComplete:
        std::printf("  t=%-10s %-14s %s\n",
                    util::to_string(event.time).c_str(),
                    sim::trace_kind_name(event.kind),
                    rt.record(static_cast<runtime::JobId>(event.a))
                        .spec.name.c_str());
        break;
      default:
        break;
    }
  }

  const runtime::JobRecord& victim_record = rt.record(victim);
  const bool ok = victim_record.preemptions >= 1 &&
                  victim_record.state == runtime::JobState::kDone &&
                  rt.record(vip).completed < victim_record.completed &&
                  report.replay_checked_steps == report.electrical.steps &&
                  report.oracle_failures == 0;
  std::printf(
      "\nbatch preempted %u time(s) at step boundaries, resumed on free "
      "hosts, and both\njobs completed oracle-proven (%llu flow-replay "
      "audited steps): %s\n",
      victim_record.preemptions,
      static_cast<unsigned long long>(report.replay_checked_steps),
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
