// Compare all four Figure-2 algorithms for one DNN model at one scale, with
// every physical parameter adjustable from the command line.
//
//   $ ./examples/dnn_allreduce --model resnet50 --nodes 256 --wavelengths 64
//   $ ./examples/dnn_allreduce --model vgg16 --nodes 1024 --tune-us 10
#include <cstdio>

#include "dnn/catalog.hpp"
#include "harness/fig2.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

namespace {

wrht::dnn::Model pick_model(const std::string& name) {
  using namespace wrht::dnn;
  if (name == "alexnet") return alexnet();
  if (name == "vgg16") return vgg16();
  if (name == "resnet50") return resnet50();
  if (name == "googlenet") return googlenet();
  std::fprintf(stderr, "unknown model '%s' (use alexnet|vgg16|resnet50|googlenet)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wrht;
  util::CliParser cli(
      "Compare E-Ring, RD, O-Ring and WRHT all-reduce times for one DNN.");
  cli.add_flag("model", "alexnet", "alexnet|vgg16|resnet50|googlenet");
  cli.add_flag("nodes", "256", "number of GPUs on the ring");
  cli.add_flag("wavelengths", "64", "wavelengths per waveguide");
  cli.add_flag("lambda-gbps", "25.0", "per-wavelength bandwidth, Gb/s");
  cli.add_flag("tune-us", "1300.0", "micro-ring tuning time, microseconds");
  cli.add_flag("elec-gbps", "10.0", "electrical link bandwidth, Gb/s");
  cli.add_flag("fp16", "false", "use 2-byte gradients instead of fp32");
  if (!cli.parse(argc, argv)) return 1;

  const dnn::Model model = pick_model(cli.get_string("model"));
  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes"));

  harness::ExperimentConfig config;
  config.optical.wdm.num_wavelengths =
      static_cast<std::uint32_t>(cli.get_int("wavelengths"));
  config.optical.wdm.wavelength_bandwidth =
      util::gbps(cli.get_double("lambda-gbps"));
  config.optical.tune_time = util::microseconds(cli.get_double("tune-us"));
  config.electrical.link_bandwidth = util::gbps(cli.get_double("elec-gbps"));
  config.dtype = cli.get_bool("fp16") ? dnn::DType::kF16 : dnn::DType::kF32;

  const util::Bytes payload = model.gradient_bytes(config.dtype);
  std::printf("%s, %u nodes, gradient %s (%s)\n\n", model.name().c_str(),
              nodes, util::to_string(payload).c_str(),
              dnn::dtype_name(config.dtype));

  util::Table table({"algorithm", "network", "time", "vs WRHT"});
  const double wrht_time =
      harness::allreduce_time(harness::Algo::kWrht, nodes, payload, config)
          .value();
  for (const harness::Algo algo : harness::all_algos()) {
    const double t =
        algo == harness::Algo::kWrht
            ? wrht_time
            : harness::allreduce_time(algo, nodes, payload, config).value();
    const bool electrical =
        algo == harness::Algo::kERing || algo == harness::Algo::kRD;
    table.add_row({harness::algo_name(algo),
                   electrical ? "electrical" : "optical",
                   util::to_string(util::Seconds(t)),
                   util::format_double(t / wrht_time, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
