// Congestion-aware vs quiet-alpha-beta routing on a saturated hybrid.
//
// kCostModelChoice's original comparison was of QUIET run times: the WRHT
// formula vs. the alpha-beta cost of the electrical schedule, both as if
// the job ran alone.  On an oversubscribed two-level fabric that estimate
// is a trap — small latency-bound jobs are all predicted faster on the
// electrical side (a few 25 us alphas vs. multi-millisecond optical step
// overheads), so EVERY one of them spills onto the same ToR uplinks, and
// the fabric the router believed was fast is saturated by the router's own
// decisions.  Meanwhile the optical ring sits underused because the
// comparison never charged the electrical side for its congestion.
//
// RoutingCostModel::kCongestionAware folds the live fabric state into both
// predictions: the electrical estimate stretches with the residual uplink
// bandwidth the in-flight tenants leave behind (a clone-probe of the
// shared FlowNetwork), the optical estimate adds the predicted wait for a
// free spectrum band (the arbiter backlog).  Once a few jobs have spilled,
// the stretched electrical prediction loses the comparison and the
// remainder runs optically — the two fabrics share the burst instead of
// one drowning.
//
// The same saturated burst is routed both ways; congestion-aware must win
// on makespan AND on the worst per-job contention slowdown, and the
// per-decision predicted-vs-actual routing error (now in the report) must
// come out tighter than the quiet model's.
//
//   $ ./bench/congestion_routing [--trace-out=trace.json]
//                                [--metrics-out=metrics.json]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"

namespace {

using namespace wrht;

runtime::RuntimeConfig routed_config(runtime::RoutingCostModel model) {
  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 8;  // scarce spectrum: spill tempts
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kCostModelChoice;
  config.routing_cost_model = model;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 16;
  config.electrical.oversubscription = 8.0;  // hot uplinks
  return config;
}

/// A burst of ToR-straddling pair jobs {j, 16+j}: every group has one host
/// in ToR0 and one in ToR1, the 16 groups cover all 32 hosts disjointly
/// (nothing host-blocks, so quiet routing is free to spill every single
/// one), and every electrical placement pushes its flows through the
/// oversubscribed uplinks.  Payloads sized so the QUIET alpha-beta
/// prediction says "electrical" for all of them — the over-spill trap.
void submit_burst(runtime::CollectiveRuntime& rt, std::uint32_t waves) {
  for (std::uint32_t w = 0; w < waves; ++w) {
    for (std::uint32_t j = 0; j < 16; ++j) {
      runtime::JobSpec spec;
      spec.participants = {j, 16 + j};
      spec.payload = util::megabytes(2);
      spec.requested_wavelengths = 1;
      spec.arrival = util::microseconds(8000.0 * w + 40.0 * j);
      spec.name = "burst-" + std::to_string(w * 16 + j);
      rt.submit(spec);
    }
  }
}

struct Outcome {
  runtime::RuntimeReport report;
  double worst_slowdown = 0.0;
};

Outcome run_model(runtime::CollectiveRuntime& rt) {
  submit_burst(rt, /*waves=*/3);
  Outcome out{rt.run(), 0.0};
  for (runtime::JobId id = 0; id < rt.num_jobs(); ++id) {
    out.worst_slowdown =
        std::max(out.worst_slowdown, rt.record(id).contention_slowdown);
  }
  return out;
}

void print_row(const char* model, const Outcome& o) {
  std::printf("%-18s %-12s %-10s %5u/%-5u %10.3fx %11.1f%% %10.1f%%\n",
              model, util::to_string(o.report.makespan).c_str(),
              util::to_string(o.report.mean_turnaround()).c_str(),
              o.report.routing.to_optical, o.report.routing.to_electrical,
              o.worst_slowdown, o.report.routing.mean_error * 100.0,
              o.report.routing.worst_error * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Congestion-aware vs quiet-alpha-beta routing bench.");
  cli.add_flag("trace-out", "", "write a Chrome/Perfetto trace JSON here");
  cli.add_flag("metrics-out", "", "write the metrics registry dump here");
  if (!cli.parse(argc, argv)) return 1;

  std::printf(
      "cost-model routing under saturation: 48 straddling pair jobs, "
      "8-lambda ring,\ntwo-level electrical fabric (16 hosts/ToR, 8:1 "
      "oversubscription)\n\n");
  std::printf("%-18s %-12s %-10s %-11s %10s %12s %11s\n", "routing model",
              "makespan", "mean turn", "opt/elec", "worst slow",
              "mean |err|", "worst |err|");

  runtime::CollectiveRuntime quiet_rt(
      routed_config(runtime::RoutingCostModel::kQuietAlphaBeta));
  const Outcome quiet = run_model(quiet_rt);

  // The congestion-aware run carries the observability export: its trace
  // shows the route-decision instants flipping back to optical as the
  // stretched electrical prediction starts losing.
  obs::MetricsRegistry registry;
  runtime::RuntimeConfig aware_cfg =
      routed_config(runtime::RoutingCostModel::kCongestionAware);
  aware_cfg.metrics = &registry;
  runtime::CollectiveRuntime aware_rt(aware_cfg);
  aware_rt.trace().enable();
  const Outcome aware = run_model(aware_rt);

  print_row("quiet-alpha-beta", quiet);
  print_row("congestion-aware", aware);

  const bool spreads = aware.report.routing.to_optical > 0 &&
                       aware.report.routing.to_electrical > 0;
  bool ok = aware.report.makespan < quiet.report.makespan &&
            aware.worst_slowdown < quiet.worst_slowdown && spreads &&
            quiet.report.completed == aware.report.completed;
  if (!obs::export_observability(cli.get_string("trace-out"),
                                 cli.get_string("metrics-out"),
                                 aware_rt.trace(), aware_rt.records(),
                                 &registry)) {
    ok = false;
  }
  std::printf(
      "\ncongestion-aware routing beats quiet-alpha-beta on makespan "
      "(%0.2fx) and worst\njob slowdown (%.2fx -> %.2fx) by spreading the "
      "burst across both fabrics: %s\n",
      quiet.report.makespan / aware.report.makespan, quiet.worst_slowdown,
      aware.worst_slowdown, ok ? "PASS" : "FAIL");

  harness::BenchJson json("congestion_routing");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.metric("quiet_makespan_s", quiet.report.makespan.value());
  json.metric("aware_makespan_s", aware.report.makespan.value());
  json.metric("aware_speedup",
              quiet.report.makespan / aware.report.makespan);
  json.metric("quiet_worst_slowdown", quiet.worst_slowdown);
  json.metric("aware_worst_slowdown", aware.worst_slowdown);
  json.metric("quiet_mean_turnaround_s",
              quiet.report.mean_turnaround().value());
  json.metric("aware_mean_turnaround_s",
              aware.report.mean_turnaround().value());
  json.metric("quiet_to_electrical", quiet.report.routing.to_electrical);
  json.metric("aware_to_electrical", aware.report.routing.to_electrical);
  json.metric("quiet_routing_mean_error", quiet.report.routing.mean_error);
  json.metric("aware_routing_mean_error", aware.report.routing.mean_error);
  json.write();
  return ok ? 0 : 1;
}
