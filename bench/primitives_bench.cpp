// Collective primitives on the WDM ring: steps, wavelength demand, and
// simulated time of each broadcast/reduce/gather variant on the optical
// fabric, including the Wrht-native rooted primitives.  Extends the paper's
// all-reduce comparison to the rest of the collective family (weight
// broadcast, ZeRO-style reduce-scatter/all-gather).
#include <cstdio>

#include "coll/primitives.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/executor.hpp"
#include "wrht/primitives.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 128;
  const util::Bytes payload = util::megabytes(100);
  const topo::RingTopology ring(n);
  optical::OpticalParams optical;  // 64 wavelengths
  const std::uint32_t w = optical.wdm.num_wavelengths;

  std::printf(
      "Collective primitives on the optical ring — N=%u, payload %s, w=%u\n\n",
      n, util::to_string(payload).c_str(), w);

  util::Table table({"primitive", "steps", "lambda need", "time"});
  const auto add_generic = [&](const char* name,
                               const coll::Schedule& schedule) {
    if (const auto annotated = core::annotate_on_ring(schedule, ring, w)) {
      table.add_row(
          {name, std::to_string(schedule.num_steps()),
           std::to_string(annotated->wavelengths_required),
           util::to_string(util::Seconds(
               core::run_on_optical(*annotated, optical, payload)
                   .total.value()))});
    } else {
      table.add_row({name, std::to_string(schedule.num_steps()),
                     "> " + std::to_string(w), "(does not fit)"});
    }
  };

  add_generic("broadcast binomial", coll::broadcast_binomial(n, 0));
  add_generic("broadcast pipelined ring",
              coll::broadcast_ring_pipelined(n, 0));
  add_generic("reduce binomial", coll::reduce_binomial(n, 0));
  add_generic("scatter binomial", coll::scatter_binomial(n, 0));
  add_generic("gather binomial", coll::gather_binomial(n, 0));
  add_generic("allgather ring", coll::allgather_ring(n));
  add_generic("allgather bruck", coll::allgather_bruck(n));
  add_generic("reduce-scatter ring", coll::reduce_scatter_ring(n));

  core::WrhtParams params;
  params.num_wavelengths = w;
  const core::WrhtReduceBuild wrht_reduce = core::build_wrht_reduce(n, params);
  const core::WrhtBroadcastBuild wrht_bcast =
      core::build_wrht_broadcast(n, 0, params);
  table.add_separator();
  table.add_row(
      {"wrht reduce",
       std::to_string(wrht_reduce.annotated.schedule.num_steps()),
       std::to_string(wrht_reduce.annotated.wavelengths_required),
       util::to_string(util::Seconds(
           core::run_on_optical(wrht_reduce.annotated, optical, payload)
               .total.value()))});
  table.add_row(
      {"wrht broadcast",
       std::to_string(wrht_bcast.annotated.schedule.num_steps()),
       std::to_string(wrht_bcast.annotated.wavelengths_required),
       util::to_string(util::Seconds(
           core::run_on_optical(wrht_bcast.annotated, optical, payload)
               .total.value()))});

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe Wrht tree does for broadcast/reduce what it does for "
      "all-reduce: one step instead of\nlog N (binomial) or N-1 (ring), at "
      "floor(m/2) wavelengths.\n");
  return 0;
}
