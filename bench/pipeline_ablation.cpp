// Ablation (extension beyond the paper): segment pipelining.  Plain Wrht is
// latency-optimal but resends the full vector per tree level; this bench
// sweeps the segment count S on a large gradient and compares against the
// paper's schedules, showing pipelined Wrht reclaiming the large-payload
// regime where msgsize_sweep shows O-Ring/E-Ring catching up.
#include <cstdio>

#include "dnn/catalog.hpp"
#include "harness/fig2.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/executor.hpp"
#include "wrht/pipeline.hpp"
#include "wrht/time_model.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 256;
  const util::Bytes payload = dnn::vgg16().gradient_bytes();
  const harness::ExperimentConfig config = harness::paper_config();
  std::printf("Pipelined Wrht — N=%u, VGG16 (%s)\n\n", n,
              util::to_string(payload).c_str());

  const double plain =
      harness::allreduce_time(harness::Algo::kWrht, n, payload, config)
          .value();
  const double oring =
      harness::allreduce_time(harness::Algo::kORing, n, payload, config)
          .value();
  const double ering =
      harness::allreduce_time(harness::Algo::kERing, n, payload, config)
          .value();

  util::Table table({"segments S", "steps", "m", "lambda used", "time",
                     "vs plain WRHT"});
  table.add_row({"(plain WRHT)", "3", "129", "64",
                 util::to_string(util::Seconds(plain)), "1.00x"});
  double best = plain;
  for (const std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    core::WrhtPipelineParams params;
    params.num_wavelengths = config.optical.wdm.num_wavelengths;
    params.num_segments = s;
    const core::WrhtPipelineBuild build =
        core::build_wrht_pipelined(n, params);
    const double t =
        core::run_on_optical(build.annotated, config.optical, payload)
            .total.value();
    best = std::min(best, t);
    table.add_row({std::to_string(s),
                   std::to_string(build.annotated.schedule.num_steps()),
                   std::to_string(build.group_size_m),
                   std::to_string(build.annotated.wavelengths_required),
                   util::to_string(util::Seconds(t)),
                   util::format_double(plain / t, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);

  const std::uint32_t s_star = core::optimal_segments(
      n, core::default_group_size(n, config.optical.wdm.num_wavelengths),
      payload, config.optical);
  std::printf(
      "\nanalytic optimum S* = %u;  baselines: O-Ring %s, E-Ring %s\n"
      "best pipelined configuration is %.2fx the plain schedule and %.2fx "
      "O-Ring.\n",
      s_star, util::to_string(util::Seconds(oring)).c_str(),
      util::to_string(util::Seconds(ering)).c_str(), plain / best,
      oring / best);
  return 0;
}
