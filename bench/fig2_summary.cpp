// The headline experiment: all four Figure-2 panels (AlexNet, VGG16,
// ResNet50, GoogLeNet x N in {128..1024} x four algorithms) and the paper's
// summary claim — Wrht reduces communication time by 75.76% vs. the
// electrical algorithms and 91.86% vs. the optical ring.
#include <cstdio>
#include <fstream>

#include "dnn/catalog.hpp"
#include "harness/fig2.hpp"
#include "harness/report.hpp"

int main() {
  using namespace wrht;
  const harness::ExperimentConfig config = harness::paper_config();

  std::vector<harness::Fig2Row> all_rows;
  for (const dnn::Model& model : dnn::paper_models()) {
    std::printf("running %s...\n", model.name().c_str());
    const auto rows = harness::run_fig2_panel(model, config);
    std::fputs(harness::render_panel(rows).c_str(), stdout);
    std::fputs("\n", stdout);
    all_rows.insert(all_rows.end(), rows.begin(), rows.end());
  }

  std::fputs(
      harness::render_headline(harness::headline_reductions(all_rows))
          .c_str(),
      stdout);

  std::ofstream csv("fig2_all.csv");
  harness::write_csv(csv, all_rows);
  std::printf("\n%zu rows written to fig2_all.csv\n", all_rows.size());
  return 0;
}
