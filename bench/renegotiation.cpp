// Fixed bands vs elastic bands on a contended ring.
//
// Once a band is granted, a fixed-band runtime holds it unchanged until the
// job completes — the narrow job that was admitted during a busy moment
// stays narrow after the ring empties, and the tenant that arrives during a
// monopolized moment waits for a full completion.  Elastic resize uses the
// step boundaries instead: a running band GROWS into freed neighboring
// spectrum when the rebuilt remainder has fewer levels, and SHRINKS toward
// its floor when the surrendered range would unblock a starved arrival.
//
// The same contended scenario is timed both ways:
//
//   hog      48 nodes, huge payload, admitted on the whole spectrum at t=0
//   starved  16 nodes, arrives while the hog holds everything, min 8 lambda
//   narrow   24 nodes, arrives while the ring is crowded, happy with 2
//
//   $ ./bench/renegotiation
#include <cstdio>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace wrht;

std::vector<runtime::JobSpec> contended_workload() {
  std::vector<runtime::JobSpec> jobs;

  runtime::JobSpec hog;
  for (std::uint32_t i = 0; i < 48; ++i) hog.participants.push_back(i);
  hog.payload = util::megabytes(192);
  hog.requested_wavelengths = 64;
  hog.min_wavelengths = 2;
  hog.name = "hog";
  jobs.push_back(hog);

  runtime::JobSpec starved;
  for (std::uint32_t i = 0; i < 16; ++i) starved.participants.push_back(8 + i);
  starved.payload = util::megabytes(24);
  starved.arrival = util::milliseconds(2.0);
  starved.requested_wavelengths = 8;
  starved.min_wavelengths = 8;
  starved.name = "starved";
  jobs.push_back(starved);

  runtime::JobSpec narrow;
  for (std::uint32_t i = 0; i < 24; ++i) narrow.participants.push_back(2 * i);
  narrow.payload = util::megabytes(96);
  narrow.arrival = util::milliseconds(3.0);
  narrow.requested_wavelengths = 2;
  narrow.min_wavelengths = 2;
  narrow.name = "narrow";
  jobs.push_back(narrow);

  return jobs;
}

runtime::RuntimeReport run_mode(bool elastic) {
  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.batcher.enabled = false;
  config.elastic_resize = elastic;
  // Both arms pinned to the historical greedy placement: this bench is the
  // fixed-vs-elastic comparison, and its 1.59x baseline predates the
  // SpectrumPlanner (now the default).  bench/spectrum_alloc measures the
  // planner against this very first-fit baseline.
  config.spectrum_policy = runtime::SpectrumPolicy::kFirstFit;
  runtime::CollectiveRuntime rt(config);
  for (const runtime::JobSpec& spec : contended_workload()) rt.submit(spec);
  return rt.run();
}

}  // namespace

int main() {
  const runtime::RuntimeReport fixed = run_mode(false);
  const runtime::RuntimeReport elastic = run_mode(true);

  std::printf("contended 3-job scenario, 64-node ring, 64 wavelengths\n\n");
  std::printf("%-14s %-12s %-9s %-16s %s\n", "mode", "makespan", "speedup",
              "mean turnaround", "resizes");
  std::printf("%-14s %-12s %8.2fx %-16s %u\n", "fixed bands",
              util::to_string(fixed.makespan).c_str(), 1.0,
              util::to_string(fixed.mean_turnaround()).c_str(),
              fixed.resizes);
  std::printf("%-14s %-12s %8.2fx %-16s %u\n", "elastic bands",
              util::to_string(elastic.makespan).c_str(),
              fixed.makespan / elastic.makespan,
              util::to_string(elastic.mean_turnaround()).c_str(),
              elastic.resizes);

  const bool ok = elastic.makespan < fixed.makespan &&
                  elastic.resizes >= 2 && fixed.resizes == 0 &&
                  elastic.mean_turnaround() < fixed.mean_turnaround();
  std::printf("\nelastic beats fixed on makespan and turnaround via %u "
              "step-boundary resizes: %s\n",
              elastic.resizes, ok ? "PASS" : "FAIL");

  harness::BenchJson json("renegotiation");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.metric("fixed_makespan_s", fixed.makespan.value());
  json.metric("elastic_makespan_s", elastic.makespan.value());
  json.metric("elastic_speedup", fixed.makespan / elastic.makespan);
  json.metric("fixed_mean_turnaround_s", fixed.mean_turnaround().value());
  json.metric("elastic_mean_turnaround_s", elastic.mean_turnaround().value());
  json.metric("elastic_resizes", elastic.resizes);
  json.write();
  return ok ? 0 : 1;
}
