// Ablation: how much WDM does Wrht need?  Sweeps the wavelength count w at
// N = 1024 with AlexNet gradients and reports steps and communication time.
// The knee shows where extra wavelengths stop buying shallower trees.
#include <cstdio>

#include "dnn/catalog.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/time_model.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 1024;
  const util::Bytes payload = dnn::alexnet().gradient_bytes();
  std::printf("Wrht vs. wavelength budget — N=%u, AlexNet (%s)\n\n", n,
              util::to_string(payload).c_str());

  util::Table table(
      {"w", "m", "steps", "merged", "lambda used", "time", "vs w=1"});
  double base = 0.0;
  bool have_base = false;
  for (const std::uint32_t w :
       {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    core::WrhtParams params;
    params.num_wavelengths = w;
    const core::WrhtBuild build = core::build_wrht(n, params);
    optical::OpticalParams optical;
    optical.wdm.num_wavelengths =
        std::max(w, build.annotated.wavelengths_required);
    const double t =
        core::run_on_optical(build.annotated, optical, payload).total.value();
    if (!have_base) {
      base = t;
      have_base = true;
    }
    table.add_row({std::to_string(w), std::to_string(build.group_size_m),
                   std::to_string(build.annotated.schedule.num_steps()),
                   build.merged_with_all_to_all ? "yes" : "no",
                   std::to_string(build.annotated.wavelengths_required),
                   util::to_string(util::Seconds(t)),
                   util::format_double(base / t, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nEach extra level of WDM halves little beyond w=64: the schedule is "
      "already 3 steps.\n");
  return 0;
}
