// Throughput of the multi-tenant runtime vs. one-collective-at-a-time.
//
// The same job mix — medium all-reduces on disjoint groups plus bursts of
// small same-group gradient buckets — is timed three ways:
//
//   serial      each job runs alone on the whole spectrum, back to back
//               (the seed library's modus operandi: sum of run_on_optical)
//   concurrent  the runtime overlaps jobs on disjoint wavelength bands
//   +batched    the runtime additionally fuses the small same-group jobs
//
// Concurrency converts idle spectrum into overlap; batching amortizes the
// fixed per-step optical overhead (2.5 ms tuning vs tens of microseconds of
// small-payload serialization) across tenants.  Both effects compound on
// simulated time, which is what this report shows.
//
//   $ ./bench/runtime_throughput
#include <cstdio>
#include <vector>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"
#include "util/random.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace {

using namespace wrht;

struct Workload {
  std::vector<runtime::JobSpec> jobs;
};

Workload make_workload(std::uint32_t ring_size, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;

  // Eight medium tenants on disjoint 8-node groups.
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
    runtime::JobSpec spec;
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec.participants.push_back(tenant * (ring_size / 8) + i);
    }
    spec.payload = util::megabytes(8 + rng.next_below(56));
    spec.name = "tenant" + std::to_string(tenant);
    w.jobs.push_back(std::move(spec));
  }

  // Sixteen small gradient buckets over one shared group.
  for (std::uint32_t i = 0; i < 16; ++i) {
    runtime::JobSpec spec;
    spec.participants = {1, 10, 19, 28, 37, 46, 55, 60};
    spec.payload = util::kilobytes(32 + rng.next_below(96));
    spec.name = "bucket" + std::to_string(i);
    w.jobs.push_back(std::move(spec));
  }
  return w;
}

/// The status quo: every job gets the whole ring to itself, one at a time.
util::Seconds serial_makespan(const Workload& w,
                              const runtime::RuntimeConfig& config) {
  util::Seconds total{0.0};
  for (const runtime::JobSpec& spec : w.jobs) {
    core::WrhtParams params;
    params.num_wavelengths = config.optical.wdm.num_wavelengths;
    const core::WrhtBuild build =
        core::build_wrht_among(spec.participants, config.ring_size, params);
    total += core::run_on_optical(build.annotated, config.optical,
                                  spec.payload)
                 .total;
  }
  return total;
}

runtime::RuntimeReport runtime_run(const Workload& w,
                                   runtime::RuntimeConfig config) {
  runtime::CollectiveRuntime rt(config);
  for (const runtime::JobSpec& spec : w.jobs) rt.submit(spec);
  return rt.run();
}

}  // namespace

int main() {
  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;

  const Workload w = make_workload(config.ring_size, /*seed=*/7);

  const util::Seconds serial = serial_makespan(w, config);

  runtime::RuntimeConfig concurrent_only = config;
  concurrent_only.batcher.enabled = false;
  const runtime::RuntimeReport concurrent = runtime_run(w, concurrent_only);

  runtime::RuntimeConfig batched = config;
  batched.batcher.enabled = true;
  batched.batcher.max_jobs_per_batch = 8;
  const runtime::RuntimeReport fused = runtime_run(w, batched);

  std::printf("%zu jobs on a %u-node ring, %u wavelengths\n\n", w.jobs.size(),
              config.ring_size, config.optical.wdm.num_wavelengths);
  std::printf("%-22s %-12s %-9s %s\n", "mode", "makespan", "speedup",
              "mean turnaround");
  std::printf("%-22s %-12s %8.2fx %s\n", "serial back-to-back",
              util::to_string(serial).c_str(), 1.0, "-");
  std::printf("%-22s %-12s %8.2fx %s\n", "concurrent",
              util::to_string(concurrent.makespan).c_str(),
              serial / concurrent.makespan,
              util::to_string(concurrent.mean_turnaround()).c_str());
  std::printf("%-22s %-12s %8.2fx %s\n", "concurrent + batched",
              util::to_string(fused.makespan).c_str(),
              serial / fused.makespan,
              util::to_string(fused.mean_turnaround()).c_str());
  std::printf("\nbatched mode fused %u batches across %u executions; peak "
              "concurrency %u jobs\n",
              fused.batches, fused.executions, fused.peak_concurrent_jobs);

  const bool ok = concurrent.makespan < serial && fused.makespan < serial &&
                  fused.makespan <= concurrent.makespan;
  harness::BenchJson json("runtime_throughput");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.metric("serial_makespan_s", serial.value());
  json.metric("concurrent_makespan_s", concurrent.makespan.value());
  json.metric("batched_makespan_s", fused.makespan.value());
  json.metric("concurrent_speedup", serial / concurrent.makespan);
  json.metric("batched_speedup", serial / fused.makespan);
  json.metric("batched_mean_turnaround_s", fused.mean_turnaround().value());
  json.metric("peak_concurrent_jobs", fused.peak_concurrent_jobs);
  json.write();
  std::printf("concurrent < serial and batched <= concurrent: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
