// Throughput of the multi-tenant runtime vs. one-collective-at-a-time.
//
// The same job mix — medium all-reduces on disjoint groups plus bursts of
// small same-group gradient buckets — is timed three ways:
//
//   serial      each job runs alone on the whole spectrum, back to back
//               (the seed library's modus operandi: sum of run_on_optical)
//   concurrent  the runtime overlaps jobs on disjoint wavelength bands
//   +batched    the runtime additionally fuses the small same-group jobs
//
// Concurrency converts idle spectrum into overlap; batching amortizes the
// fixed per-step optical overhead (2.5 ms tuning vs tens of microseconds of
// small-payload serialization) across tenants.  Both effects compound on
// simulated time, which is what this report shows.
//
// The bench also guards the observability layer's two overhead promises:
// with no registry attached the inline emission helpers must never touch
// the heap (global operator new is counted), and attaching a registry must
// not move a single simulated timestamp (identical makespan).
//
//   $ ./bench/runtime_throughput [--trace-out=trace.json]
//                                [--metrics-out=metrics.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "harness/bench_json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace {
std::size_t g_allocations = 0;
}  // namespace

// Counting replacements for the global allocator: the zero-allocation guard
// below snapshots g_allocations around a burst of null-handle emissions.
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace wrht;

/// Without a registry every cached instrument handle stays nullptr, and the
/// inline helpers (obs::inc/set/set_max/observe) must reduce to one branch —
/// no heap traffic.  This is the contract that lets the runtime stay
/// instrumented unconditionally.
bool zero_allocation_guard() {
  obs::Counter* counter = nullptr;
  obs::Gauge* gauge = nullptr;
  obs::Histogram* histogram = nullptr;
  const std::size_t before = g_allocations;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    obs::inc(counter);
    obs::inc(counter, i);
    obs::set(gauge, static_cast<double>(i));
    obs::set_max(gauge, static_cast<double>(i));
    obs::observe(histogram, static_cast<double>(i) * 1e-6);
  }
  return g_allocations == before;
}

struct Workload {
  std::vector<runtime::JobSpec> jobs;
};

Workload make_workload(std::uint32_t ring_size, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;

  // Eight medium tenants on disjoint 8-node groups.
  for (std::uint32_t tenant = 0; tenant < 8; ++tenant) {
    runtime::JobSpec spec;
    for (std::uint32_t i = 0; i < 8; ++i) {
      spec.participants.push_back(tenant * (ring_size / 8) + i);
    }
    spec.payload = util::megabytes(8 + rng.next_below(56));
    spec.name = "tenant" + std::to_string(tenant);
    w.jobs.push_back(std::move(spec));
  }

  // Sixteen small gradient buckets over one shared group.
  for (std::uint32_t i = 0; i < 16; ++i) {
    runtime::JobSpec spec;
    spec.participants = {1, 10, 19, 28, 37, 46, 55, 60};
    spec.payload = util::kilobytes(32 + rng.next_below(96));
    spec.name = "bucket" + std::to_string(i);
    w.jobs.push_back(std::move(spec));
  }
  return w;
}

/// The status quo: every job gets the whole ring to itself, one at a time.
util::Seconds serial_makespan(const Workload& w,
                              const runtime::RuntimeConfig& config) {
  util::Seconds total{0.0};
  for (const runtime::JobSpec& spec : w.jobs) {
    core::WrhtParams params;
    params.num_wavelengths = config.optical.wdm.num_wavelengths;
    const core::WrhtBuild build =
        core::build_wrht_among(spec.participants, config.ring_size, params);
    total += core::run_on_optical(build.annotated, config.optical,
                                  spec.payload)
                 .total;
  }
  return total;
}

runtime::RuntimeReport runtime_run(const Workload& w,
                                   runtime::RuntimeConfig config) {
  runtime::CollectiveRuntime rt(config);
  for (const runtime::JobSpec& spec : w.jobs) rt.submit(spec);
  return rt.run();
}

/// Host-side sustained jobs/sec of the batched configuration: the same run
/// repeated until ~0.2 s of wall clock has elapsed, so the rate is not
/// dominated by timer granularity on this tiny job mix.
double sustained_jobs_per_sec(const Workload& w,
                              const runtime::RuntimeConfig& config) {
  // simlint-allow(wallclock): measuring the runtime's real-time serving rate
  using Clock = std::chrono::steady_clock;
  std::uint64_t served = 0;
  const Clock::time_point start = Clock::now();
  double elapsed = 0.0;
  do {
    served += runtime_run(w, config).completed;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.2);
  return static_cast<double>(served) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Multi-tenant runtime throughput report.");
  cli.add_flag("trace-out", "", "write a Chrome/Perfetto trace JSON here");
  cli.add_flag("metrics-out", "", "write the metrics registry dump here");
  if (!cli.parse(argc, argv)) return 1;

  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;

  const Workload w = make_workload(config.ring_size, /*seed=*/7);

  const util::Seconds serial = serial_makespan(w, config);

  runtime::RuntimeConfig concurrent_only = config;
  concurrent_only.batcher.enabled = false;
  const runtime::RuntimeReport concurrent = runtime_run(w, concurrent_only);

  runtime::RuntimeConfig batched = config;
  batched.batcher.enabled = true;
  batched.batcher.max_jobs_per_batch = 8;
  const runtime::RuntimeReport fused = runtime_run(w, batched);

  std::printf("%zu jobs on a %u-node ring, %u wavelengths\n\n", w.jobs.size(),
              config.ring_size, config.optical.wdm.num_wavelengths);
  std::printf("%-22s %-12s %-9s %s\n", "mode", "makespan", "speedup",
              "mean turnaround");
  std::printf("%-22s %-12s %8.2fx %s\n", "serial back-to-back",
              util::to_string(serial).c_str(), 1.0, "-");
  std::printf("%-22s %-12s %8.2fx %s\n", "concurrent",
              util::to_string(concurrent.makespan).c_str(),
              serial / concurrent.makespan,
              util::to_string(concurrent.mean_turnaround()).c_str());
  std::printf("%-22s %-12s %8.2fx %s\n", "concurrent + batched",
              util::to_string(fused.makespan).c_str(),
              serial / fused.makespan,
              util::to_string(fused.mean_turnaround()).c_str());
  std::printf("\nbatched mode fused %u batches across %u executions; peak "
              "concurrency %u jobs\n",
              fused.batches, fused.executions, fused.peak_concurrent_jobs);

  const double jobs_per_sec = sustained_jobs_per_sec(w, batched);
  std::printf("sustained host throughput: %.0f jobs/sec (batched config)\n",
              jobs_per_sec);

  // The batched configuration once more, this time fully instrumented: a
  // MetricsRegistry attached and the trace enabled.  Observability must be
  // a pure observer — the simulated makespan has to match the bare run
  // bit-for-bit — and the run doubles as the source of this bench's
  // trace/metrics artifacts.
  obs::MetricsRegistry registry;
  runtime::RuntimeConfig instrumented_cfg = batched;
  instrumented_cfg.metrics = &registry;
  runtime::CollectiveRuntime instrumented(instrumented_cfg);
  instrumented.trace().enable();
  for (const runtime::JobSpec& spec : w.jobs) instrumented.submit(spec);
  const runtime::RuntimeReport observed = instrumented.run();

  const bool parity = observed.makespan == fused.makespan;
  const bool no_alloc = zero_allocation_guard();
  std::printf("instrumented makespan identical to bare run: %s\n",
              parity ? "yes" : "NO");
  std::printf("null-handle emission helpers allocate nothing: %s\n",
              no_alloc ? "yes" : "NO");

  bool ok = concurrent.makespan < serial && fused.makespan < serial &&
            fused.makespan <= concurrent.makespan && parity && no_alloc;
  if (!obs::export_observability(cli.get_string("trace-out"),
                                 cli.get_string("metrics-out"),
                                 instrumented.trace(), instrumented.records(),
                                 &registry)) {
    ok = false;
  }
  harness::BenchJson json("runtime_throughput");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.note("zero_alloc_guard", no_alloc ? "pass" : "fail");
  json.note("instrumented_parity", parity ? "pass" : "fail");
  json.metric("instrumented_makespan_s", observed.makespan.value());
  json.metric("serial_makespan_s", serial.value());
  json.metric("concurrent_makespan_s", concurrent.makespan.value());
  json.metric("batched_makespan_s", fused.makespan.value());
  json.metric("concurrent_speedup", serial / concurrent.makespan);
  json.metric("batched_speedup", serial / fused.makespan);
  json.metric("batched_mean_turnaround_s", fused.mean_turnaround().value());
  json.metric("peak_concurrent_jobs", fused.peak_concurrent_jobs);
  json.metric("sustained_jobs_per_sec", jobs_per_sec);
  json.write();
  std::printf("concurrent < serial and batched <= concurrent: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
