// Fine-grained scaling series: all four Figure-2 algorithms over
// N in {16, 32, ..., 1024} for a large and a small model — the line-series
// view of the bar panels, exposing where each algorithm's slope changes
// (WRHT's 2->3 step transition, O-Ring's linear overhead wall).
#include <cstdio>

#include "dnn/catalog.hpp"
#include "harness/fig2.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace wrht;
  const harness::ExperimentConfig config = harness::paper_config();

  for (const dnn::Model& model : {dnn::vgg16(), dnn::googlenet()}) {
    const util::Bytes payload = model.gradient_bytes(config.dtype);
    std::printf("Scaling series — %s (%s)\n\n", model.name().c_str(),
                util::to_string(payload).c_str());
    util::Table table(
        {"N", "E-Ring", "RD", "O-Ring", "WRHT", "O-Ring/WRHT"});
    for (std::uint32_t n = 16; n <= 1024; n *= 2) {
      std::vector<std::string> row{std::to_string(n)};
      double oring = 0.0;
      double wrht_time = 0.0;
      for (const harness::Algo algo : harness::all_algos()) {
        const double t =
            harness::allreduce_time(algo, n, payload, config).value();
        if (algo == harness::Algo::kORing) oring = t;
        if (algo == harness::Algo::kWrht) wrht_time = t;
        row.push_back(util::to_string(util::Seconds(t)));
      }
      row.push_back(util::format_double(oring / wrht_time, 1) + "x");
      table.add_row(std::move(row));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "O-Ring's column grows linearly with N (per-step overhead x 2(N-1)); "
      "WRHT's is flat\nonce the step count settles at 3 — the scaling story "
      "behind the paper's Figure 2.\n");
  return 0;
}
