// Figure 2(a): AlexNet all-reduce communication time, N in {128..1024}.
#include "dnn/catalog.hpp"
#include "fig2_panel.hpp"

int main() {
  return wrht::bench::run_fig2_panel_main(wrht::dnn::alexnet(),
                                          "fig2_alexnet.csv");
}
