// Survey of every all-reduce schedule in the library: steps, total wire
// traffic, single-port bottleneck, and simulated time on both substrates.
// Situates Wrht in the classic latency/bandwidth trade-off space.
#include <cstdio>

#include "coll/algorithms.hpp"
#include "coll/cost_model.hpp"
#include "elec/alphabeta.hpp"
#include "elec/schedule_runner.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 64;
  const util::Bytes payload(100'000'000);
  std::printf("All-reduce algorithm survey — N=%u, payload %s\n\n", n,
              util::to_string(payload).c_str());

  const elec::ElectricalCluster cluster =
      elec::ElectricalCluster::star(n, elec::ElectricalParams{});
  const topo::RingTopology ring(n);
  const optical::OpticalParams optical;

  util::Table table({"algorithm", "steps", "traffic", "lambda need",
                     "electrical", "optical"});

  const coll::Schedule schedules[] = {
      coll::ring_allreduce(n),   coll::recursive_doubling(n),
      coll::halving_doubling(n), coll::binomial_tree(n),
      coll::direct_allreduce(n), coll::naive_ring(n),
      coll::hierarchical_allreduce(n, 8),
  };
  for (const coll::Schedule& schedule : schedules) {
    const double electrical =
        elec::run_on_electrical(schedule, cluster, payload).total.value();
    const auto annotated = core::annotate_on_ring(
        schedule, ring, optical.wdm.num_wavelengths);
    std::string lambda = "> 64";
    std::string optical_time = "(does not fit)";
    if (annotated.has_value()) {
      lambda = std::to_string(annotated->wavelengths_required);
      optical_time = util::to_string(util::Seconds(
          core::run_on_optical(*annotated, optical, payload).total.value()));
    }
    table.add_row({schedule.name(), std::to_string(schedule.num_steps()),
                   util::to_string(schedule.total_traffic(payload)), lambda,
                   util::to_string(util::Seconds(electrical)), optical_time});
  }

  // Wrht itself (native builder, not the generic annotator).
  core::WrhtParams params;
  params.num_wavelengths = optical.wdm.num_wavelengths;
  const core::WrhtBuild build = core::build_wrht(n, params);
  table.add_separator();
  table.add_row(
      {"wrht", std::to_string(build.annotated.schedule.num_steps()),
       util::to_string(build.annotated.schedule.total_traffic(payload)),
       std::to_string(build.annotated.wavelengths_required), "-",
       util::to_string(util::Seconds(
           core::run_on_optical(build.annotated, optical, payload)
               .total.value()))});

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nChunked schedules (ring, halving-doubling) minimize traffic; tree "
      "and direct schedules\nminimize steps.  On the optical ring the step "
      "overhead makes the step count decisive,\nand only Wrht combines few "
      "steps with a spectrum-feasible wavelength demand.\n");
  return 0;
}
