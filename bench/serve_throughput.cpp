// Million-job trace-driven serving throughput: flattened hot paths vs. the
// naive event loop.
//
// The same generated workload (seeded Poisson arrivals, heavy-tailed
// payloads and participant sets) is served two ways:
//
//   naive  flat_hot_path = false — the original event loop: per-transfer
//          spectrum-release events, O(W) arbiter scans, O(queue) admission
//          scans and erases, remove-erase outstanding registries — with the
//          whole trace materialized and scheduled up front, the pre-
//          streaming modus operandi;
//   flat   flat_hot_path = true — slot-recycled event queue, interval-
//          indexed arbiter, one release event per step, head-offset
//          admission queue — pulled through CollectiveRuntime::serve() one
//          spec at a time.
//
// Both modes make bit-identical decisions, which the bench PROVES by
// comparing the two RuntimeReports field by field (any drift fails the
// run).  The headline metrics are sustained jobs/sec in each mode, their
// ratio, and the peak RSS of the streaming phase.
//
// The arrival rate deliberately exceeds the spectrum's service capacity, so
// a backlog forms and the naive mode's O(queue)-per-event scans surface —
// exactly the regime a million-job serving frontend lives in.
//
//   $ ./bench/serve_throughput [--jobs=100000] [--naive-jobs=0] [--seed=1]
//
// --naive-jobs caps the naive measurement separately (0 = same as --jobs):
// at nightly's 10^6 jobs the naive mode's quadratic backlog costs would
// run for hours, so it is measured at a smaller count — which UNDERSTATES
// the speedup (naive jobs/sec only degrades with scale), keeping the
// reported ratio conservative.  The bit-identity check always runs both
// modes at the naive count.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wrht;

/// Wall-clock seconds elapsed since `since` — this bench measures HOST
/// throughput of the simulator itself; nothing here feeds the sim clock.
// simlint-allow(wallclock): benchmarking the event loop's real-time cost
using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point since) {
  return std::chrono::duration<double>(WallClock::now() - since).count();
}

/// Peak resident set (VmHWM) in kB; 0 where /proc is unavailable.
std::uint64_t peak_rss_kb() {
  std::uint64_t kb = 0;
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      if (std::sscanf(line, "VmHWM: %lu kB", &kb) == 1) break;
    }
    std::fclose(f);
  }
#endif
  return kb;
}

workload::WorkloadConfig make_workload_config(std::uint64_t jobs,
                                              std::uint64_t seed,
                                              double rate) {
  workload::WorkloadConfig w;
  w.seed = seed;
  w.num_jobs = jobs;
  w.ring_size = 64;
  w.arrivals = workload::ArrivalProcess::kPoisson;
  // Above service capacity on purpose: the backlog this builds is the
  // naive mode's worst case and the flat mode's design point.
  w.mean_rate = rate;
  w.payload_median = util::kilobytes(256);
  w.max_payload = util::megabytes(16);
  w.max_participants = 16;
  w.deadline_fraction = 0.5;
  return w;
}

runtime::RuntimeConfig make_runtime_config(bool flat) {
  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.default_request = 8;
  config.batcher.enabled = false;
  // The oracle re-proves every schedule; at 10^5+ jobs that is pure
  // per-job overhead identical in both modes, so it would only dilute the
  // event-loop comparison this bench exists for.
  config.validate_with_oracle = false;
  config.flat_hot_path = flat;
  return config;
}

struct Measured {
  runtime::RuntimeReport report;
  double wall_s = 0.0;
};

/// The naive path: materialize the whole trace, submit everything up
/// front, run().  Generation cost is included — that is what the
/// pre-streaming workflow paid too.
Measured run_naive(std::uint64_t jobs, std::uint64_t seed, double rate) {
  const auto start = WallClock::now();
  workload::WorkloadGenerator gen(make_workload_config(jobs, seed, rate));
  std::vector<runtime::JobSpec> specs;
  specs.reserve(jobs);
  while (std::optional<runtime::JobSpec> spec = gen.next()) {
    specs.push_back(std::move(*spec));
  }
  runtime::CollectiveRuntime rt(make_runtime_config(/*flat=*/false));
  for (runtime::JobSpec& spec : specs) rt.submit(std::move(spec));
  Measured m;
  m.report = rt.run();
  m.wall_s = seconds_since(start);
  return m;
}

/// The streaming path: serve() pulls specs straight off the generator.
Measured run_flat(std::uint64_t jobs, std::uint64_t seed, double rate) {
  const auto start = WallClock::now();
  workload::WorkloadGenerator gen(make_workload_config(jobs, seed, rate));
  runtime::CollectiveRuntime rt(make_runtime_config(/*flat=*/true));
  Measured m;
  m.report = rt.serve(gen);
  m.wall_s = seconds_since(start);
  return m;
}

/// Field-by-field bit comparison of two reports; prints every mismatch.
bool reports_identical(const runtime::RuntimeReport& a,
                       const runtime::RuntimeReport& b) {
  bool ok = true;
  const auto check = [&ok](const char* field, double x, double y) {
    if (x != y) {
      std::printf("  report mismatch: %s %.17g vs %.17g\n", field, x, y);
      ok = false;
    }
  };
  check("makespan", a.makespan.value(), b.makespan.value());
  check("submitted", a.submitted, b.submitted);
  check("completed", a.completed, b.completed);
  check("rejected", a.rejected, b.rejected);
  check("executions", a.executions, b.executions);
  check("batches", a.batches, b.batches);
  check("total_steps", static_cast<double>(a.total_steps),
        static_cast<double>(b.total_steps));
  check("total_retunes", static_cast<double>(a.total_retunes),
        static_cast<double>(b.total_retunes));
  check("spectrum_reservations", static_cast<double>(a.spectrum_reservations),
        static_cast<double>(b.spectrum_reservations));
  check("peak_concurrent_jobs", a.peak_concurrent_jobs,
        b.peak_concurrent_jobs);
  check("total_turnaround", a.total_turnaround.value(),
        b.total_turnaround.value());
  check("slo.p50_turnaround", a.slo.p50_turnaround.value(),
        b.slo.p50_turnaround.value());
  check("slo.p99_turnaround", a.slo.p99_turnaround.value(),
        b.slo.p99_turnaround.value());
  check("slo.p999_turnaround", a.slo.p999_turnaround.value(),
        b.slo.p999_turnaround.value());
  check("slo.p99_slowdown", a.slo.p99_slowdown, b.slo.p99_slowdown);
  check("slo.max_wait", a.slo.max_wait.value(), b.slo.max_wait.value());
  check("slo.deadline_hits", static_cast<double>(a.slo.deadline_hits),
        static_cast<double>(b.slo.deadline_hits));
  check("optical.steps", static_cast<double>(a.optical.steps),
        static_cast<double>(b.optical.steps));
  check("optical.makespan", a.optical.makespan.value(),
        b.optical.makespan.value());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Trace-driven serving throughput: flat vs naive loop.");
  cli.add_flag("jobs", "100000", "jobs served by the flat streaming mode");
  cli.add_flag("naive-jobs", "0",
               "jobs for the naive measurement (0 = same as --jobs)");
  cli.add_flag("seed", "1", "workload seed");
  cli.add_flag("rate", "50000",
               "mean arrival rate, jobs per simulated second");
  if (!cli.parse(argc, argv)) return 1;

  const auto jobs = static_cast<std::uint64_t>(cli.get_int("jobs"));
  const std::uint64_t naive_jobs =
      cli.get_int("naive-jobs") > 0
          ? static_cast<std::uint64_t>(cli.get_int("naive-jobs"))
          : jobs;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double rate = cli.get_double("rate");

  // Flat first, so its VmHWM reading is not polluted by the naive mode's
  // materialized trace.
  std::printf("flat streaming serve: %lu jobs...\n",
              static_cast<unsigned long>(jobs));
  const Measured flat = run_flat(jobs, seed, rate);
  const std::uint64_t flat_rss_kb = peak_rss_kb();

  std::printf("naive materialized run: %lu jobs...\n",
              static_cast<unsigned long>(naive_jobs));
  const Measured naive = run_naive(naive_jobs, seed, rate);

  // Bit-identity: both modes at the naive job count (the flat run is
  // re-done at that count when the two differ).
  const Measured flat_ref =
      naive_jobs == jobs ? flat : run_flat(naive_jobs, seed, rate);
  std::printf("comparing reports at %lu jobs...\n",
              static_cast<unsigned long>(naive_jobs));
  const bool identical = reports_identical(flat_ref.report, naive.report);

  const double flat_jps =
      static_cast<double>(flat.report.completed) / flat.wall_s;
  const double naive_jps =
      static_cast<double>(naive.report.completed) / naive.wall_s;
  // The >= 10x gate compares EQUAL job counts — flat re-measured at the
  // naive count when the two differ — since the naive mode's jobs/sec is a
  // function of how deep its quadratic backlog got.
  const double flat_ref_jps =
      static_cast<double>(flat_ref.report.completed) / flat_ref.wall_s;
  const double speedup = flat_ref_jps / naive_jps;

  std::printf("\n%-28s %12s %14s\n", "mode", "wall", "jobs/sec");
  std::printf("%-28s %10.2fs %14.0f\n", "naive (materialized run)",
              naive.wall_s, naive_jps);
  std::printf("%-28s %10.2fs %14.0f\n", "flat (streaming serve)", flat.wall_s,
              flat_jps);
  std::printf("\nsame-count speedup: %.1fx (both modes at %lu jobs)\n",
              speedup, static_cast<unsigned long>(naive_jobs));
  std::printf("flat-phase peak RSS: %lu kB\n",
              static_cast<unsigned long>(flat_rss_kb));
  std::printf("reports bit-identical: %s\n", identical ? "yes" : "NO");

  const bool ok = identical && speedup >= 10.0 &&
                  flat.report.completed == jobs &&
                  naive.report.completed == naive_jobs;

  harness::BenchJson json("serve_throughput");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.note("reports_bit_identical", identical ? "pass" : "fail");
  json.metric("flat_jobs", static_cast<double>(jobs));
  json.metric("naive_jobs", static_cast<double>(naive_jobs));
  json.metric("arrival_rate_per_sec", rate);
  json.metric("flat_jobs_per_sec", flat_jps);
  json.metric("naive_jobs_per_sec", naive_jps);
  json.metric("same_count_flat_jobs_per_sec", flat_ref_jps);
  json.metric("speedup", speedup);
  json.metric("flat_wall_s", flat.wall_s);
  json.metric("naive_wall_s", naive.wall_s);
  json.metric("flat_peak_rss_kb", static_cast<double>(flat_rss_kb));
  json.metric("flat_makespan_s", flat.report.makespan.value());
  json.metric("flat_p99_turnaround_s",
              flat.report.slo.p99_turnaround.value());
  json.write();

  std::printf("flat >= 10x naive and reports identical: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
