// Ablation: the group size m.  The builder defaults to the largest
// spectrum-feasible group (m = 2w+1); this sweep forces smaller m at fixed
// w = 64 and shows the step count and time penalty of deeper trees — the
// design choice DESIGN.md calls out.
#include <cstdio>

#include "dnn/catalog.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 1024;
  const std::uint32_t w = 64;
  const util::Bytes payload = dnn::alexnet().gradient_bytes();
  std::printf("Wrht group-size ablation — N=%u, w=%u, AlexNet (%s)\n\n", n, w,
              util::to_string(payload).c_str());

  optical::OpticalParams optical;  // defaults: w=64
  util::Table table({"m", "tree levels", "steps", "merged", "lambda used",
                     "time", "vs best"});

  struct Row {
    std::uint32_t m;
    double time;
  };
  std::vector<Row> rows;
  double best = 1e100;
  for (const std::uint32_t m : {3u, 5u, 9u, 17u, 33u, 65u, 129u}) {
    core::WrhtParams params;
    params.num_wavelengths = w;
    params.forced_group_size = m;
    const core::WrhtBuild build = core::build_wrht(n, params);
    const double t =
        core::run_on_optical(build.annotated, optical, payload).total.value();
    best = std::min(best, t);
    rows.push_back({m, t});
    table.add_row(
        {std::to_string(m),
         std::to_string(build.reduce_levels.size()),
         std::to_string(build.annotated.schedule.num_steps()),
         build.merged_with_all_to_all ? "yes" : "no",
         std::to_string(build.annotated.wavelengths_required),
         util::to_string(util::Seconds(t)), ""});
  }

  // Re-render with the ratio column now that `best` is known.
  util::Table final_table({"m", "tree levels", "steps", "merged",
                           "lambda used", "time", "vs best"});
  for (const Row& row : rows) {
    core::WrhtParams params;
    params.num_wavelengths = w;
    params.forced_group_size = row.m;
    const core::WrhtBuild build = core::build_wrht(n, params);
    final_table.add_row(
        {std::to_string(row.m),
         std::to_string(build.reduce_levels.size()),
         std::to_string(build.annotated.schedule.num_steps()),
         build.merged_with_all_to_all ? "yes" : "no",
         std::to_string(build.annotated.wavelengths_required),
         util::to_string(util::Seconds(row.time)),
         util::format_double(row.time / best, 2) + "x"});
  }
  std::fputs(final_table.render().c_str(), stdout);
  std::printf(
      "\nLargest feasible m wins: every halving of m adds a tree level, and "
      "each level costs a full-payload serialization plus the step "
      "overhead.\n");
  return 0;
}
