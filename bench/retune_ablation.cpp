// Ablation: the fixed per-step optical overhead — the quantity the whole
// comparison hinges on (DESIGN.md §3).  Sweeps the micro-ring tuning time
// from electro-optic (microseconds) to thermal (milliseconds) and also
// compares the paper's "retune every step" charging against state-tracking
// transceivers that only pay when the wavelength actually changes.
#include <cstdio>

#include "coll/algorithms.hpp"
#include "dnn/catalog.hpp"
#include "harness/fig2.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace {

double oring_time(std::uint32_t n, wrht::util::Bytes payload,
                  const wrht::optical::OpticalParams& p) {
  wrht::harness::ExperimentConfig config = wrht::harness::paper_config();
  config.optical = p;
  return wrht::harness::allreduce_time(wrht::harness::Algo::kORing, n,
                                       payload, config)
      .value();
}

double wrht_time(std::uint32_t n, wrht::util::Bytes payload,
                 const wrht::optical::OpticalParams& p) {
  wrht::harness::ExperimentConfig config = wrht::harness::paper_config();
  config.optical = p;
  return wrht::harness::allreduce_time(wrht::harness::Algo::kWrht, n,
                                       payload, config)
      .value();
}

}  // namespace

int main() {
  using namespace wrht;
  const std::uint32_t n = 512;
  const util::Bytes payload = dnn::alexnet().gradient_bytes();
  std::printf(
      "Per-step overhead sensitivity — N=%u, AlexNet (%s)\n"
      "(thermal micro-ring tuning is ms-scale; electro-optic is us-scale)\n\n",
      n, util::to_string(payload).c_str());

  util::Table table({"tune time", "O-Ring", "WRHT", "WRHT speedup"});
  for (const double tune_us : {1.0, 10.0, 100.0, 500.0, 2500.0, 5000.0}) {
    optical::OpticalParams p;
    p.tune_time = util::microseconds(tune_us);
    const double oring = oring_time(n, payload, p);
    const double wrht_t = wrht_time(n, payload, p);
    table.add_row({util::to_string(util::microseconds(tune_us)),
                   util::to_string(util::Seconds(oring)),
                   util::to_string(util::Seconds(wrht_t)),
                   util::format_double(oring / wrht_t, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nCharging policy: paper model (retune every step) vs. transceiver "
      "state tracking\n\n");
  util::Table policy({"schedule", "retune every step", "state tracking",
                      "delta"});
  for (const bool use_wrht : {false, true}) {
    optical::OpticalParams every = optical::OpticalParams{};
    every.retune_every_step = true;
    optical::OpticalParams tracked = optical::OpticalParams{};
    tracked.retune_every_step = false;
    const double a = use_wrht ? wrht_time(n, payload, every)
                              : oring_time(n, payload, every);
    const double b = use_wrht ? wrht_time(n, payload, tracked)
                              : oring_time(n, payload, tracked);
    policy.add_row({use_wrht ? "WRHT" : "O-Ring",
                    util::to_string(util::Seconds(a)),
                    util::to_string(util::Seconds(b)),
                    util::format_double((a - b) / a * 100.0, 1) + "%"});
  }
  std::fputs(policy.render().c_str(), stdout);
  std::printf(
      "\nO-Ring keeps the same neighbour and wavelength after step 1, so "
      "state tracking removes\nalmost its entire overhead term; the paper's "
      "per-step charge is the conservative model.\n");
  return 0;
}
