// Goodput under churn: the same seeded workload served under increasing
// fault pressure.  Each sweep point scales every failure domain's rate by
// a multiplier (x0 is the fault-free baseline), serves the identical job
// stream — the chaos process draws from its own derived seed, so the
// submissions are byte-identical across points — and records what the
// recovery machinery salvaged: goodput (1 - wasted step share), MTTR,
// completions, kills, evictions/restarts/migrations.
//
// Determinism is part of the contract: the x1 point is served twice and
// the run fails unless both passes agree bit-for-bit (completion order and
// every fault counter), so BENCH_fault_churn.json is byte-stable per seed.
//
//   $ ./bench/fault_churn [--jobs=300] [--seed=1]
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace wrht;

struct ChurnPoint {
  double multiplier = 0.0;
  runtime::RuntimeReport report;
  std::vector<runtime::JobId> completion_order;
};

workload::WorkloadConfig workload_for(std::uint64_t jobs, std::uint64_t seed,
                                      double fault_multiplier) {
  workload::WorkloadConfig w;
  w.seed = seed;
  w.num_jobs = jobs;
  w.ring_size = 32;
  w.mean_rate = 400.0;
  w.max_participants = 16;
  w.payload_median = util::kilobytes(256);
  w.max_payload = util::megabytes(16);
  if (fault_multiplier > 0.0) {
    w.fault_horizon = util::Seconds(2.0);
    w.transceiver_mtbf = util::Seconds(0.05 / fault_multiplier);
    w.node_mtbf = util::Seconds(0.08 / fault_multiplier);
    w.tor_mtbf = util::Seconds(0.15 / fault_multiplier);
    w.wavelength_mtbf = util::Seconds(0.06 / fault_multiplier);
    w.fault_mttr = util::Seconds(0.01);
    w.fault_num_wavelengths = 16;
    w.fault_num_tors = 4;
  }
  return w;
}

ChurnPoint serve_point(std::uint64_t jobs, std::uint64_t seed,
                       double multiplier) {
  workload::WorkloadGenerator source(
      workload_for(jobs, seed, multiplier));
  runtime::FaultInjector injector = source.make_fault_injector();

  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = runtime::ElectricalFabric::kTwoLevelShared;
  config.electrical.hosts_per_tor = 8;
  if (multiplier > 0.0) config.faults = &injector;

  runtime::CollectiveRuntime rt(config);
  ChurnPoint point;
  point.multiplier = multiplier;
  point.report = rt.serve(source);
  point.completion_order = rt.completion_order();
  return point;
}

std::string suffix_for(double multiplier) {
  return "x" + std::to_string(static_cast<int>(multiplier));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("Goodput vs fault rate under seeded chaos injection.");
  cli.add_flag("jobs", "300", "jobs per sweep point");
  cli.add_flag("seed", "1", "workload + chaos seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto jobs = static_cast<std::uint64_t>(cli.get_int("jobs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::vector<double> multipliers = {0.0, 1.0, 2.0, 4.0};
  std::vector<ChurnPoint> points;
  for (const double multiplier : multipliers) {
    points.push_back(serve_point(jobs, seed, multiplier));
  }

  // The determinism half of the contract: replay the x1 point and demand
  // bit-identity — the artifact must be byte-stable per seed.
  const ChurnPoint replay = serve_point(jobs, seed, 1.0);
  const ChurnPoint& x1 = points[1];
  const bool deterministic =
      replay.completion_order == x1.completion_order &&
      replay.report.faults.injected == x1.report.faults.injected &&
      replay.report.faults.killed_jobs == x1.report.faults.killed_jobs &&
      replay.report.goodput() == x1.report.goodput() &&
      replay.report.makespan == x1.report.makespan;

  bool ok = deterministic;
  util::Table table({"fault rate", "faults", "disrupted", "evict/restart/migr",
                     "killed", "mttr", "goodput", "completed"});
  for (const ChurnPoint& point : points) {
    const runtime::RuntimeReport& r = point.report;
    // Every point must close its ledger and prove every completion.
    ok = ok && r.oracle_failures == 0 &&
         r.completed + r.rejected + r.faults.killed_jobs == r.submitted;
    table.add_row(
        {suffix_for(point.multiplier), std::to_string(r.faults.injected),
         std::to_string(r.faults.disrupted_executions),
         std::to_string(r.faults.evictions) + "/" +
             std::to_string(r.faults.restarts) + "/" +
             std::to_string(r.faults.migrations),
         std::to_string(r.faults.killed_jobs),
         util::to_string(r.faults.mttr()),
         std::to_string(r.goodput()).substr(0, 5),
         std::to_string(r.completed)});
  }
  // The churn must actually bite at the top of the sweep, or the MTBF
  // calibration has drifted into a no-op.
  ok = ok && points.back().report.faults.injected > 0 &&
       points.back().report.faults.disrupted_executions > 0;

  std::printf("fault churn — %llu jobs per point, seed %llu\n\n",
              static_cast<unsigned long long>(jobs),
              static_cast<unsigned long long>(seed));
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nx1 replay bit-identical: %s\n",
              deterministic ? "yes" : "NO");
  std::printf("%s\n", ok ? "PASS" : "FAIL");

  harness::BenchJson json("fault_churn");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.note("deterministic_replay", deterministic ? "pass" : "fail");
  json.metric("jobs_per_point", static_cast<double>(jobs));
  json.metric("seed", static_cast<double>(seed));
  for (const ChurnPoint& point : points) {
    const std::string at = suffix_for(point.multiplier);
    const runtime::RuntimeReport& r = point.report;
    json.metric("faults_" + at, static_cast<double>(r.faults.injected));
    json.metric("disrupted_" + at,
                static_cast<double>(r.faults.disrupted_executions));
    json.metric("evictions_" + at, static_cast<double>(r.faults.evictions));
    json.metric("restarts_" + at, static_cast<double>(r.faults.restarts));
    json.metric("migrations_" + at,
                static_cast<double>(r.faults.migrations));
    json.metric("killed_" + at, static_cast<double>(r.faults.killed_jobs));
    json.metric("mttr_ms_" + at, r.faults.mttr().value() * 1e3);
    json.metric("goodput_" + at, r.goodput());
    json.metric("completed_" + at, static_cast<double>(r.completed));
    json.metric("makespan_s_" + at, r.makespan.value());
  }
  json.write();
  return ok ? 0 : 1;
}
