// Ablation: wavelength-assignment policy quality.  First Fit vs. Best Fit
// vs. the exact optimum (branch-and-bound, small instances) on Wrht group
// steps, and the all-to-all merge instances against the paper's
// ceil(k^2/8) allocation (Liang & Shen).
#include <cstdio>

#include "optical/assign.hpp"
#include "optical/conflict.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"

int main() {
  using namespace wrht;
  using optical::FitPolicy;

  std::printf("Wavelength assignment policies on all-to-all merge steps\n\n");
  util::Table merge_table({"k reps", "ring N", "ceil(k^2/8)", "link load",
                           "first fit", "best fit", "plain order ff"});
  for (const std::uint32_t k : {2u, 4u, 6u, 8u, 12u, 16u, 22u}) {
    const std::uint32_t n = k * 8;
    const topo::RingTopology ring(n);
    std::vector<topo::NodeId> nodes;
    for (std::uint32_t i = 0; i < k; ++i) nodes.push_back(i * 8);
    const auto arcs = optical::balanced_all_to_all_arcs(ring, nodes);
    const auto ff = optical::assign_wavelengths_longest_first(
        ring, arcs, 4096, FitPolicy::kFirstFit);
    const auto bf = optical::assign_wavelengths_longest_first(
        ring, arcs, 4096, FitPolicy::kBestFit);
    const auto plain =
        optical::assign_wavelengths(ring, arcs, 4096, FitPolicy::kFirstFit);
    merge_table.add_row({std::to_string(k), std::to_string(n),
                         std::to_string((k * k + 7) / 8),
                         std::to_string(optical::max_link_load(ring, arcs)),
                         std::to_string(ff.wavelengths_used),
                         std::to_string(bf.wavelengths_used),
                         std::to_string(plain.wavelengths_used)});
  }
  std::fputs(merge_table.render().c_str(), stdout);

  std::printf(
      "\nSmall instances against the exact optimum (branch-and-bound)\n\n");
  util::Table exact_table(
      {"instance", "arcs", "optimal", "first fit", "best fit"});
  struct Instance {
    const char* name;
    std::uint32_t ring_size;
    std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs;
  };
  const Instance instances[] = {
      {"nested gather", 16, {{4, 8}, {5, 8}, {6, 8}, {7, 8}}},
      {"chain overlap", 12, {{0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 6}}},
      {"odd cycle", 5, {{0, 2}, {1, 3}, {2, 4}, {3, 0}, {4, 1}}},
      {"crossing pairs", 10, {{0, 5}, {2, 7}, {4, 9}, {6, 1}, {8, 3}}},
  };
  for (const Instance& instance : instances) {
    const topo::RingTopology ring(instance.ring_size);
    std::vector<topo::Arc> arcs;
    for (const auto& [a, b] : instance.pairs) {
      arcs.push_back(ring.arc(a, b, ring.shortest_direction(a, b)));
    }
    const auto ff = optical::assign_wavelengths_longest_first(
        ring, arcs, 64, FitPolicy::kFirstFit);
    const auto bf = optical::assign_wavelengths_longest_first(
        ring, arcs, 64, FitPolicy::kBestFit);
    exact_table.add_row(
        {instance.name, std::to_string(arcs.size()),
         std::to_string(optical::optimal_wavelength_count(ring, arcs)),
         std::to_string(ff.wavelengths_used),
         std::to_string(bf.wavelengths_used)});
  }
  std::fputs(exact_table.render().c_str(), stdout);
  std::printf(
      "\nDirection-balanced routing + longest-first greedy stays within "
      "~10%% of ceil(k^2/8);\nthe paper assumes the exact Liang & Shen "
      "construction meets it with equality.\n");
  return 0;
}
