// Ablation: message-size sweep at N = 256.  Wrht is a latency-optimal
// (log-step) schedule that resends the full vector per level, while the
// chunked rings are bandwidth-optimal; this sweep locates the crossover
// where ring schedules catch back up as payloads grow — the regime analysis
// behind the paper's Figure 2 operating point.
#include <cstdio>

#include "harness/fig2.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace wrht;
  const std::uint32_t n = 256;
  harness::ExperimentConfig config = harness::paper_config();
  std::printf("All-reduce time vs. payload size — N=%u\n\n", n);

  util::Table table(
      {"payload", "E-Ring", "RD", "O-Ring", "WRHT", "best"});
  for (const std::uint64_t bytes :
       {1'000ull, 10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull,
        100'000'000ull, 1'000'000'000ull, 4'000'000'000ull}) {
    const util::Bytes payload(bytes);
    double best_time = 1e100;
    const char* best_name = "?";
    std::vector<std::string> row{util::to_string(payload)};
    for (const harness::Algo algo : harness::all_algos()) {
      const double t =
          harness::allreduce_time(algo, n, payload, config).value();
      row.push_back(util::to_string(util::Seconds(t)));
      if (t < best_time) {
        best_time = t;
        best_name = harness::algo_name(algo);
      }
    }
    row.emplace_back(best_name);
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nSmall payloads: per-step overhead dominates and WRHT's 3 steps "
      "crush the rings' 510.\nVery large payloads: bandwidth terms dominate "
      "and chunked rings close the gap.\n");
  return 0;
}
