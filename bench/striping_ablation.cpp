// Ablation (extension beyond the paper): wavelength striping.  A Wrht tree
// step leaves most of the spectrum idle away from the representatives;
// striping grants idle wavelengths to the slowest transfers.  This bench
// quantifies the speedup across scales and wavelength budgets.
#include <cstdio>

#include "dnn/catalog.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"
#include "wrht/striping.hpp"

int main() {
  using namespace wrht;
  const util::Bytes payload = dnn::resnet50().gradient_bytes();
  std::printf("Wavelength striping ablation — ResNet50 gradients (%s)\n\n",
              util::to_string(payload).c_str());

  util::Table table({"N", "w", "steps", "base time", "striped time",
                     "speedup", "extra lambdas", "max stripes"});
  for (const std::uint32_t n : {64u, 256u, 1024u}) {
    table.add_separator();
    for (const std::uint32_t w : {8u, 32u, 64u}) {
      core::WrhtParams params;
      params.num_wavelengths = w;
      const core::WrhtBuild build = core::build_wrht(n, params);
      optical::OpticalParams optical;
      optical.wdm.num_wavelengths = w;

      const double base =
          core::run_on_optical(build.annotated, optical, payload)
              .total.value();
      core::StripingStats stats;
      const core::AnnotatedSchedule striped =
          core::apply_striping(build.annotated, w, payload, &stats);
      const double after =
          core::run_on_optical(striped, optical, payload).total.value();

      table.add_row({std::to_string(n), std::to_string(w),
                     std::to_string(build.annotated.schedule.num_steps()),
                     util::to_string(util::Seconds(base)),
                     util::to_string(util::Seconds(after)),
                     util::format_double(base / after, 2) + "x",
                     std::to_string(stats.extra_lambdas_granted),
                     std::to_string(stats.max_stripes_on_one_transfer)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nStriping helps most when groups are small relative to the spectrum "
      "(idle capacity)\nand cannot help the fully-loaded spans next to each "
      "representative.\n");
  return 0;
}
