// The step-count table behind §2 of the paper: communication steps of ring
// all-reduce (2(N-1)) versus Wrht (2*ceil(log_m N) or -1), with the built
// schedules' measured wavelength demand against the paper's bounds.
#include <cstdio>

#include "util/table.hpp"
#include "wrht/analysis.hpp"
#include "wrht/builder.hpp"

int main() {
  using namespace wrht;
  std::printf(
      "Step counts and wavelength demand (paper §2 formulas vs. built "
      "schedules)\n\n");

  util::Table table({"N", "w", "m", "m*", "merged", "steps", "formula",
                     "ring steps", "lambda used", "floor(m/2)",
                     "ceil(m*^2/8)"});
  for (const std::uint32_t w : {8u, 16u, 64u}) {
    table.add_separator();
    for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
      core::WrhtParams params;
      params.num_wavelengths = w;
      const core::WrhtBuild build = core::build_wrht(n, params);
      const core::WrhtAnalysis a = core::analyze(build, util::megabytes(100));
      table.add_row({std::to_string(n), std::to_string(w),
                     std::to_string(a.group_size_m),
                     std::to_string(a.final_rep_count_mstar),
                     a.merged_with_all_to_all ? "yes" : "no",
                     std::to_string(a.total_steps),
                     std::to_string(a.paper_formula_steps),
                     std::to_string(a.ring_steps),
                     std::to_string(a.max_lambda),
                     std::to_string(a.group_lambda_bound),
                     a.merged_with_all_to_all
                         ? std::to_string(a.all_to_all_lambda_bound)
                         : "-"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n'steps' is the built schedule; 'formula' is 2*ceil(log_m N) minus 1 "
      "when merged.\nWrht needs 2-4 steps where the ring needs 2(N-1).\n");
  return 0;
}
