// Hybrid placement on a saturated spectrum: optical-only vs
// electrical-overflow vs cost-model choice.
//
// Four hog jobs carve the whole 64-wavelength spectrum into 16-wide bands
// and hold it with big payloads.  A burst of eight medium jobs then
// arrives: under kOpticalOnly they can only queue (the spectrum is
// saturated), under kElectricalOverflow they are placed onto the electrical
// fallback's host links the moment they arrive, and under kCostModelChoice
// each job goes wherever the cost models predict it finishes sooner.  The
// overflow jobs' participant spans are pairwise disjoint, so all eight run
// concurrently on exclusive access links.
//
//   $ ./bench/hybrid_placement
#include <cstdio>
#include <vector>

#include "harness/bench_json.hpp"
#include "harness/report.hpp"
#include "runtime/runtime.hpp"

namespace {

using namespace wrht;

std::vector<runtime::JobSpec> saturated_workload() {
  std::vector<runtime::JobSpec> jobs;
  // Four hogs: disjoint 16-node spans, 16 wavelengths each = the whole
  // spectrum, held for tens of milliseconds.
  for (std::uint32_t h = 0; h < 4; ++h) {
    runtime::JobSpec hog;
    for (std::uint32_t i = 0; i < 16; ++i) {
      hog.participants.push_back(h * 16 + i);
    }
    hog.payload = util::megabytes(64);
    hog.requested_wavelengths = 16;
    hog.min_wavelengths = 16;
    hog.name = "hog-" + std::to_string(h);
    jobs.push_back(hog);
  }
  // The overflow burst: disjoint 8-node spans, arriving while every
  // wavelength is taken.
  for (std::uint32_t b = 0; b < 8; ++b) {
    runtime::JobSpec burst;
    for (std::uint32_t i = 0; i < 8; ++i) {
      burst.participants.push_back(b * 8 + i);
    }
    burst.payload = util::megabytes(8);
    burst.arrival = util::milliseconds(1.0);
    burst.requested_wavelengths = 8;
    burst.min_wavelengths = 8;
    burst.name = "burst-" + std::to_string(b);
    jobs.push_back(burst);
  }
  return jobs;
}

runtime::RuntimeReport run_mode(runtime::HybridPlacementPolicy placement) {
  runtime::RuntimeConfig config;
  config.ring_size = 64;
  config.optical.wdm.num_wavelengths = 64;
  config.batcher.enabled = false;
  config.placement = placement;
  runtime::CollectiveRuntime rt(config);
  for (const runtime::JobSpec& spec : saturated_workload()) rt.submit(spec);
  return rt.run();
}

void print_row(const char* mode, const runtime::RuntimeReport& report,
               const runtime::RuntimeReport& baseline) {
  std::printf("%-20s %-12s %8.2fx %-16s %u/%u\n", mode,
              util::to_string(report.makespan).c_str(),
              baseline.makespan / report.makespan,
              util::to_string(report.mean_turnaround()).c_str(),
              report.optical.jobs, report.electrical.jobs);
}

}  // namespace

int main() {
  const runtime::RuntimeReport optical_only =
      run_mode(runtime::HybridPlacementPolicy::kOpticalOnly);
  const runtime::RuntimeReport overflow =
      run_mode(runtime::HybridPlacementPolicy::kElectricalOverflow);
  const runtime::RuntimeReport cost_choice =
      run_mode(runtime::HybridPlacementPolicy::kCostModelChoice);

  std::printf(
      "saturated 12-job mix, 64-node ring, 64 wavelengths, star fallback\n\n");
  std::printf("%-20s %-12s %-9s %-16s %s\n", "placement", "makespan",
              "speedup", "mean turnaround", "opt/elec jobs");
  print_row("optical-only", optical_only, optical_only);
  print_row("electrical-overflow", overflow, optical_only);
  print_row("cost-model-choice", cost_choice, optical_only);

  std::printf("\n%s\n",
              harness::render_substrate_table(
                  {{"optical", overflow.optical.jobs,
                    overflow.optical.executions, overflow.optical.steps,
                    overflow.optical.makespan.value()},
                   {"electrical", overflow.electrical.jobs,
                    overflow.electrical.executions, overflow.electrical.steps,
                    overflow.electrical.makespan.value()}})
                  .c_str());

  const bool ok = overflow.makespan < optical_only.makespan &&
                  overflow.electrical.jobs > 0 &&
                  optical_only.electrical.jobs == 0 &&
                  overflow.completed == optical_only.completed;
  harness::BenchJson json("hybrid_placement");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.metric("optical_only_makespan_s", optical_only.makespan.value());
  json.metric("overflow_makespan_s", overflow.makespan.value());
  json.metric("cost_choice_makespan_s", cost_choice.makespan.value());
  json.metric("overflow_speedup", optical_only.makespan / overflow.makespan);
  json.metric("optical_only_mean_turnaround_s",
              optical_only.mean_turnaround().value());
  json.metric("overflow_mean_turnaround_s",
              overflow.mean_turnaround().value());
  json.metric("cost_choice_mean_turnaround_s",
              cost_choice.mean_turnaround().value());
  json.metric("cost_choice_electrical_jobs", cost_choice.electrical.jobs);
  json.metric("cost_choice_routing_mean_error",
              cost_choice.routing.mean_error);
  json.write();
  std::printf(
      "electrical overflow strictly improves the saturated makespan over "
      "optical-only: %s\n",
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
