// Shared driver for the four Figure-2 panel benches: run one model across
// the paper's node sweep with the calibrated defaults, print the raw and
// normalized table, and report this panel's reduction statistics.
#pragma once

#include <cstdio>
#include <fstream>

#include "harness/fig2.hpp"
#include "harness/report.hpp"

namespace wrht::bench {

inline int run_fig2_panel_main(const dnn::Model& model,
                               const char* csv_name) {
  const harness::ExperimentConfig config = harness::paper_config();
  std::printf("Reproducing Figure 2 — %s (%s gradients, %llu parameters)\n",
              model.name().c_str(),
              util::to_string(model.gradient_bytes(config.dtype)).c_str(),
              static_cast<unsigned long long>(model.declared_params()));
  std::printf("  optical: %u wavelengths x %s, step overhead %s\n",
              config.optical.wdm.num_wavelengths,
              util::to_string(config.optical.wdm.wavelength_bandwidth).c_str(),
              util::to_string(config.optical.fixed_step_overhead()).c_str());
  std::printf("  electrical: %s links, %s per hop\n\n",
              util::to_string(config.electrical.link_bandwidth).c_str(),
              util::to_string(config.electrical.link_latency).c_str());

  const auto rows = harness::run_fig2_panel(model, config);
  std::fputs(harness::render_panel(rows).c_str(), stdout);
  std::fputs(
      harness::render_headline(harness::headline_reductions(rows)).c_str(),
      stdout);

  if (csv_name != nullptr) {
    std::ofstream csv(csv_name);
    harness::write_csv(csv, rows);
    std::printf("\nrows written to %s\n", csv_name);
  }
  return 0;
}

}  // namespace wrht::bench
