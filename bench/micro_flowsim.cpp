// google-benchmark micro-benchmarks of the flow-level electrical simulator:
// events per second for the patterns the Figure-2 harness runs.
#include <benchmark/benchmark.h>

#include "coll/algorithms.hpp"
#include "elec/schedule_runner.hpp"

namespace {

void BM_FlowRingStep(benchmark::State& state) {
  // One ring step: n simultaneous neighbour flows over the star.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const wrht::elec::ElectricalCluster cluster =
      wrht::elec::ElectricalCluster::star(n, wrht::elec::ElectricalParams{});
  for (auto _ : state) {
    wrht::elec::FlowNetwork network = cluster.make_network();
    for (std::uint32_t i = 0; i < n; ++i) {
      network.add_flow(cluster.route(i, (i + 1) % n),
                       wrht::util::Bytes(1'000'000));
    }
    benchmark::DoNotOptimize(network.run().value());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlowRingStep)->Arg(64)->Arg(256)->Arg(1024);

void BM_FlowIncast(benchmark::State& state) {
  // Worst-case fairness recomputation: k flows into one host.
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const wrht::elec::ElectricalCluster cluster =
      wrht::elec::ElectricalCluster::star(k + 1,
                                          wrht::elec::ElectricalParams{});
  for (auto _ : state) {
    wrht::elec::FlowNetwork network = cluster.make_network();
    for (std::uint32_t i = 1; i <= k; ++i) {
      network.add_flow(cluster.route(i, 0), wrht::util::Bytes(1'000'000));
    }
    benchmark::DoNotOptimize(network.run().value());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_FlowIncast)->Arg(16)->Arg(128)->Arg(512);

void BM_FullRingAllReduceElectrical(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const wrht::elec::ElectricalCluster cluster =
      wrht::elec::ElectricalCluster::star(n, wrht::elec::ElectricalParams{});
  const wrht::coll::Schedule schedule = wrht::coll::ring_allreduce(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wrht::elec::run_on_electrical(schedule, cluster,
                                      wrht::util::megabytes(100))
            .total.value());
  }
  state.SetItemsProcessed(state.iterations() * schedule.total_transfers());
}
BENCHMARK(BM_FullRingAllReduceElectrical)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
