// google-benchmark micro-benchmarks of schedule construction: how fast can
// the library build Wrht and baseline schedules?  Relevant because training
// frameworks rebuild schedules when elasticity changes the world size.
#include <benchmark/benchmark.h>

#include "coll/algorithms.hpp"
#include "wrht/builder.hpp"
#include "wrht/striping.hpp"

namespace {

void BM_BuildWrht(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  wrht::core::WrhtParams params;
  params.num_wavelengths = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrht::core::build_wrht(n, params));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildWrht)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Complexity(benchmark::oN);

void BM_BuildRingAllReduce(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrht::coll::ring_allreduce(n));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildRingAllReduce)->Arg(64)->Arg(256)->Arg(1024)
    ->Complexity(benchmark::oNSquared);

void BM_BuildRecursiveDoubling(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrht::coll::recursive_doubling(n));
  }
}
BENCHMARK(BM_BuildRecursiveDoubling)->Arg(64)->Arg(1024);

void BM_PredictedSteps(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wrht::core::predicted_steps(n, wrht::core::default_group_size(n, 64),
                                    64));
  }
}
BENCHMARK(BM_PredictedSteps)->Arg(1024)->Arg(65536);

void BM_ApplyStriping(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  wrht::core::WrhtParams params;
  params.num_wavelengths = 64;
  const wrht::core::WrhtBuild build = wrht::core::build_wrht(n, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wrht::core::apply_striping(
        build.annotated, 64, wrht::util::megabytes(100)));
  }
}
BENCHMARK(BM_ApplyStriping)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
