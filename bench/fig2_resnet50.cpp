// Figure 2(c): ResNet50 all-reduce communication time, N in {128..1024}.
#include "dnn/catalog.hpp"
#include "fig2_panel.hpp"

int main() {
  return wrht::bench::run_fig2_panel_main(wrht::dnn::resnet50(),
                                          "fig2_resnet50.csv");
}
