// google-benchmark micro-benchmarks of the discrete-event kernel and the
// optical ring network: transfer throughput of the simulation itself.
#include <benchmark/benchmark.h>

#include "optical/network.hpp"
#include "sim/simulator.hpp"
#include "wrht/builder.hpp"
#include "wrht/executor.hpp"

namespace {

void BM_EventQueueChurn(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    wrht::sim::Simulator simulator;
    for (std::uint64_t i = 0; i < events; ++i) {
      simulator.schedule_in(
          wrht::util::Seconds(static_cast<double>(i % 97) * 1e-6), [] {});
    }
    benchmark::DoNotOptimize(simulator.run().value());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueChurn)->Arg(1000)->Arg(100000);

void BM_OpticalRingStep(benchmark::State& state) {
  // One Wrht-like gather step on a 256-ring: 255 concurrent transfers.
  const std::uint32_t n = 256;
  wrht::optical::OpticalParams params;
  params.wdm.num_wavelengths = 128;
  wrht::core::WrhtParams wp;
  wp.num_wavelengths = 128;
  const wrht::core::WrhtBuild build = wrht::core::build_wrht(n, wp);
  for (auto _ : state) {
    wrht::optical::OpticalRingNetwork network(n, params);
    benchmark::DoNotOptimize(
        wrht::core::run_on_optical(build.annotated, network,
                                   wrht::util::megabytes(100))
            .total.value());
  }
  state.SetItemsProcessed(state.iterations() *
                          build.annotated.schedule.total_transfers());
}
BENCHMARK(BM_OpticalRingStep);

void BM_OpticalChunkedRing(benchmark::State& state) {
  // The O-Ring workload: many tiny steps (the harness's stress case).
  const auto n = static_cast<std::uint32_t>(state.range(0));
  wrht::optical::OpticalParams params;
  for (auto _ : state) {
    wrht::optical::OpticalRingNetwork network(n, params);
    const wrht::topo::RingTopology& ring = network.ring();
    for (std::uint32_t s = 0; s + 1 < 2 * n; ++s) {
      std::vector<wrht::optical::TimedTransfer> transfers;
      transfers.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        transfers.push_back(wrht::optical::TimedTransfer{
            i,
            (i + 1) % n,
            wrht::util::Bytes(1000),
            ring.arc(i, (i + 1) % n, wrht::topo::Direction::kClockwise),
            {0}});
      }
      network.execute_step(transfers);
    }
    benchmark::DoNotOptimize(network.now().value());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_OpticalChunkedRing)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
