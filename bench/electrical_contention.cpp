// Shared-fabric electrical contention: multi-tenant flow timing on an
// oversubscribed two-level tree vs. the exclusive-star fallback.
//
// The star gives every execution private host links, so quiet-network step
// timing is exact and tenants never contend — hiding the very congestion
// that motivates the optical ring.  The shared two-level fabric times all
// tenants' flows together in ONE FlowNetwork with max-min fair sharing on
// the ToR uplinks.  This bench shows both regimes:
//
//  * SANITY — disjoint ToR-contained tenants on the shared fabric at full
//    bisection reproduce the exclusive-star timing (no shared link is ever
//    crossed, so the fluid model must agree to rounding);
//  * CONTENTION — tenants straddling two ToRs sweep the oversubscription
//    factor: at 1:1 the uplinks are wide enough and the slowdown stays
//    1.00x, beyond it the tenants' cross-ToR flows fight for uplink
//    bandwidth and every job's contention slowdown (shared-fabric time /
//    quiet-network time) climbs with the factor, while the exclusive star
//    would have claimed nothing happened.
//
// Every shared-fabric step is re-proven at end of run by the whole-horizon
// flow-replay oracle (the runtime aborts on any disagreement, and the
// report counts the audited steps).
//
//   $ ./bench/electrical_contention
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"
#include "util/math.hpp"

namespace {

using namespace wrht;

runtime::RuntimeConfig fabric_config(runtime::ElectricalFabric fabric,
                                     std::uint32_t hosts_per_tor,
                                     double oversubscription) {
  runtime::RuntimeConfig config;
  config.ring_size = 32;
  config.optical.wdm.num_wavelengths = 16;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kElectricalOverflow;
  config.electrical.fabric = fabric;
  config.electrical.hosts_per_tor = hosts_per_tor;
  config.electrical.oversubscription = oversubscription;
  return config;
}

/// Disjoint jobs pinned to the electrical fabric.  Contained: four 8-host
/// jobs, each inside one ToR of 8 — no shared link is ever crossed.
/// Straddling: eight 4-host jobs, each half in ToR0 and half in ToR1 (of
/// 16) — every ring step pushes 16 concurrent flows through each uplink
/// direction, so any uplink narrower than the hosts' aggregate rate
/// congests.
void submit_quartet(runtime::CollectiveRuntime& rt, bool contained) {
  const std::uint32_t jobs = contained ? 4u : 8u;
  for (std::uint32_t j = 0; j < jobs; ++j) {
    runtime::JobSpec spec;
    if (contained) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        spec.participants.push_back(j * 8 + i);
      }
    } else {
      spec.participants = {2 * j, 2 * j + 1, 16 + 2 * j, 16 + 2 * j + 1};
    }
    spec.payload = util::megabytes(4 + j);
    spec.pin = runtime::SubstratePin::kElectricalOnly;
    spec.name = "tenant-" + std::to_string(j);
    rt.submit(spec);
  }
}

struct RunOutcome {
  runtime::RuntimeReport report;
  double worst_slowdown = 0.0;
  double completion_delta = 0.0;  // max relative delta vs. a reference run
};

RunOutcome run_quartet(const runtime::RuntimeConfig& config, bool contained,
                       const runtime::CollectiveRuntime* reference) {
  runtime::CollectiveRuntime rt(config);
  submit_quartet(rt, contained);
  RunOutcome out{rt.run(), 0.0, 0.0};
  for (runtime::JobId id = 0; id < rt.num_jobs(); ++id) {
    out.worst_slowdown =
        std::max(out.worst_slowdown, rt.record(id).contention_slowdown);
    if (reference != nullptr) {
      const double mine = rt.record(id).completed.value();
      const double theirs = reference->record(id).completed.value();
      out.completion_delta =
          std::max(out.completion_delta, std::abs(mine - theirs) / theirs);
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf(
      "electrical contention on the shared two-level fallback fabric\n"
      "32 hosts, 10 Gb/s access links, tenants pinned electrical\n\n");

  // --- sanity: ToR-contained tenants reproduce the exclusive star -------
  runtime::CollectiveRuntime star_rt(fabric_config(
      runtime::ElectricalFabric::kStarExclusive, 8, 1.0));
  submit_quartet(star_rt, /*contained=*/true);
  const runtime::RuntimeReport star_contained = star_rt.run();
  const RunOutcome shared_contained = run_quartet(
      fabric_config(runtime::ElectricalFabric::kTwoLevelShared, 8, 1.0),
      /*contained=*/true, &star_rt);
  std::printf(
      "ToR-contained tenants, full bisection: shared two-level vs star\n"
      "  star makespan %s, shared makespan %s\n"
      "  max per-job completion delta %.2e (fluid-model rounding only)\n"
      "  worst contention slowdown %.3fx, replay-audited steps %llu\n\n",
      util::to_string(star_contained.makespan).c_str(),
      util::to_string(shared_contained.report.makespan).c_str(),
      shared_contained.completion_delta, shared_contained.worst_slowdown,
      static_cast<unsigned long long>(
          shared_contained.report.replay_checked_steps));

  // --- contention: straddling tenants sweep the oversubscription --------
  runtime::CollectiveRuntime star_straddle_rt(fabric_config(
      runtime::ElectricalFabric::kStarExclusive, 8, 1.0));
  submit_quartet(star_straddle_rt, /*contained=*/false);
  const runtime::RuntimeReport star_straddle = star_straddle_rt.run();
  std::printf(
      "ToR-straddling tenants: 8 jobs, one uplink flow each per direction "
      "per step,\nso the 16-host uplinks congest once oversubscription "
      "exceeds 16/8 = 2.\n(the exclusive star would claim: makespan %s, "
      "slowdown 1.000x at every oversubscription)\n\n",
      util::to_string(star_straddle.makespan).c_str());
  std::printf("%-16s %-12s %-10s %-9s %-10s %s\n", "oversubscription",
              "makespan", "vs star", "retimes", "slowdown", "uplink peak");

  bool diverged = false;
  bool matched_at_one = false;
  harness::BenchJson json("electrical_contention");
  json.metric("star_straddle_makespan_s", star_straddle.makespan.value());
  json.metric("contained_completion_delta",
              shared_contained.completion_delta);
  for (const double oversub : {1.0, 2.0, 3.0, 4.0, 8.0}) {
    const RunOutcome outcome = run_quartet(
        fabric_config(runtime::ElectricalFabric::kTwoLevelShared, 16,
                      oversub),
        /*contained=*/false, nullptr);
    const double peak =
        outcome.report.electrical_link_peak.empty()
            ? 0.0
            : *std::max_element(outcome.report.electrical_link_peak.begin(),
                                outcome.report.electrical_link_peak.end());
    std::printf("%-16.0f %-12s %-10.3f %-9llu %-10.3f %.0f%%\n", oversub,
                util::to_string(outcome.report.makespan).c_str(),
                outcome.report.makespan.value() /
                    star_straddle.makespan.value(),
                static_cast<unsigned long long>(outcome.report.step_retimes),
                outcome.worst_slowdown, peak * 100.0);
    const std::string tag = "oversub_" + std::to_string(
                                static_cast<int>(oversub));
    json.metric(tag + "_makespan_s", outcome.report.makespan.value());
    json.metric(tag + "_worst_slowdown", outcome.worst_slowdown);
    json.metric(tag + "_uplink_peak", peak);
    if (util::approx_eq(oversub, 1.0, 1e-12)) {
      matched_at_one = outcome.worst_slowdown < 1.0 + 1e-6;
    } else if (oversub > 2.0 && outcome.worst_slowdown > 1.05) {
      diverged = true;
    }
  }

  const bool ok = matched_at_one && diverged &&
                  shared_contained.completion_delta < 1e-9 &&
                  shared_contained.worst_slowdown < 1.0 + 1e-6 &&
                  shared_contained.report.replay_checked_steps ==
                      shared_contained.report.electrical.steps;
  std::printf(
      "\nshared fabric matches the star when nothing is shared, diverges "
      "under oversubscribed load: %s\n",
      ok ? "PASS" : "FAIL");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.write();
  return ok ? 0 : 1;
}
