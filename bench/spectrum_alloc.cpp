// SpectrumPlanner vs the first-fit ablation on a saturated spectrum.
//
// Two measurements, one verdict:
//
//   placement  a six-job scenario that saturates the 16-wavelength
//              spectrum and then springs first-fit's classic trap.  Four
//              jobs fill the spectrum at t=0; the two short ones release
//              non-adjacent holes [0,4) and [8,10).  A narrow long-lived
//              job (N, width 2) arrives first: first-fit carves it from
//              the lowest hole, [0,2), stranding 2-wide slivers on both
//              sides — the wide tenant (W, width 4) right behind it then
//              waits ~45 ms for a release.  The planner's best-fit term
//              parks N in the snug [8,10) hole, keeps [0,4) whole, and
//              admits W immediately.  Every placement in both arms is
//              still proven by the runtime's oracle machinery.
//
//   routing    the stress-harness seed set (8 seeds x 60 jobs) under
//              kCostModelChoice: the congestion-aware model now rides the
//              planner's contiguity-honest earliest_fit forecast for
//              optical backlog, so its promises must be kept strictly
//              better than the quiet alpha-beta baseline's (mean
//              |predicted - actual| completion error).
//
//   $ ./bench/spectrum_alloc
#include <cstdio>
#include <vector>

#include "harness/bench_json.hpp"
#include "runtime/runtime.hpp"
#include "util/random.hpp"

namespace {

using namespace wrht;

constexpr std::uint32_t kRingSize = 32;
constexpr std::uint32_t kWavelengths = 16;

runtime::JobSpec span_job(const char* name, std::uint32_t first,
                          std::uint32_t len, std::uint32_t width,
                          util::Bytes payload, util::Seconds arrival) {
  runtime::JobSpec spec;
  for (std::uint32_t i = 0; i < len; ++i) {
    spec.participants.push_back(first + i);
  }
  spec.payload = payload;
  spec.min_wavelengths = width;
  spec.requested_wavelengths = width;
  spec.arrival = arrival;
  spec.name = name;
  return spec;
}

/// The fragmentation trap.  Widths are pinned (min == requested) and
/// elastic resize is off in this arm, so admission timing is decided by
/// placement alone; B, D, and N all drain near t=58 ms, which maximizes
/// the price first-fit pays for blocking W behind its own sliver.
std::vector<runtime::JobSpec> placement_scenario() {
  return {
      span_job("A", 0, 6, 4, util::megabytes(5), util::Seconds(0.0)),
      span_job("B", 6, 6, 4, util::megabytes(130), util::Seconds(0.0)),
      span_job("C", 12, 4, 2, util::megabytes(2), util::Seconds(0.0)),
      span_job("D", 16, 7, 6, util::megabytes(134), util::Seconds(0.0)),
      span_job("N", 23, 4, 2, util::megabytes(95), util::milliseconds(12.0)),
      span_job("W", 27, 5, 4, util::megabytes(100), util::milliseconds(13.0)),
  };
}

runtime::RuntimeReport run_placement(runtime::SpectrumPolicy policy) {
  runtime::RuntimeConfig config;
  config.ring_size = kRingSize;
  config.optical.wdm.num_wavelengths = kWavelengths;
  config.batcher.enabled = false;
  config.placement = runtime::HybridPlacementPolicy::kOpticalOnly;
  config.policy = runtime::FairnessPolicy::kFifo;
  config.elastic_resize = false;
  config.spectrum_policy = policy;
  runtime::CollectiveRuntime rt(config);
  for (const runtime::JobSpec& spec : placement_scenario()) rt.submit(spec);
  return rt.run();
}

/// Saturated seeded mix for the routing arm: contiguous spans with fixed
/// heterogeneous widths (2, 4, or 8 of 16) arriving within a 10 ms window.
std::vector<runtime::JobSpec> saturated_mix(std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<runtime::JobSpec> jobs;
  for (std::uint32_t j = 0; j < 60; ++j) {
    runtime::JobSpec spec;
    const std::uint32_t len = rng.next_below(2) == 0 ? 4u : 8u;
    const std::uint32_t start =
        static_cast<std::uint32_t>(rng.next_below(4)) * 8u;
    for (std::uint32_t i = 0; i < len; ++i) {
      spec.participants.push_back((start + i) % kRingSize);
    }
    spec.payload = util::Bytes(64'000 + rng.next_below(8'000'000));
    spec.arrival =
        util::microseconds(static_cast<double>(rng.next_below(10'000)));
    spec.min_wavelengths = len == 4 ? 2u : (1u << (1 + rng.next_below(3)));
    spec.requested_wavelengths = spec.min_wavelengths;
    spec.priority = static_cast<std::int32_t>(rng.next_below(6)) - 2;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

const std::uint64_t kSeeds[] = {0ull,  0xC0FFEEull, 1ull,  2ull,
                                3ull,  7ull,        42ull, 20260730ull};

struct RoutingArm {
  double mean_error_sum = 0.0;
  std::uint32_t oracle_failures = 0;
};

RoutingArm run_routing(runtime::RoutingCostModel model) {
  RoutingArm arm;
  for (const std::uint64_t seed : kSeeds) {
    runtime::RuntimeConfig config;
    config.ring_size = kRingSize;
    config.optical.wdm.num_wavelengths = kWavelengths;
    config.batcher.enabled = false;
    config.policy = runtime::FairnessPolicy::kPriorityPreempt;
    config.elastic_resize = true;
    config.placement = runtime::HybridPlacementPolicy::kCostModelChoice;
    config.routing_cost_model = model;
    runtime::CollectiveRuntime rt(config);
    for (const runtime::JobSpec& spec : saturated_mix(seed)) rt.submit(spec);
    const runtime::RuntimeReport report = rt.run();
    arm.mean_error_sum += report.routing.mean_error;
    arm.oracle_failures += report.oracle_failures;
  }
  return arm;
}

}  // namespace

int main() {
  const runtime::RuntimeReport planner =
      run_placement(runtime::SpectrumPolicy::kPlanner);
  const runtime::RuntimeReport first_fit =
      run_placement(runtime::SpectrumPolicy::kFirstFit);
  const RoutingArm aware =
      run_routing(runtime::RoutingCostModel::kCongestionAware);
  const RoutingArm quiet =
      run_routing(runtime::RoutingCostModel::kQuietAlphaBeta);

  const std::size_t seeds = sizeof(kSeeds) / sizeof(kSeeds[0]);
  const double speedup = first_fit.makespan / planner.makespan;

  std::printf("fragmentation trap: 6 jobs, %u-node ring, %u wavelengths\n\n",
              kRingSize, kWavelengths);
  std::printf("%-12s %-14s %-18s %s\n", "placement", "makespan",
              "mean turnaround", "speedup");
  std::printf("%-12s %-14s %-18s %7.2fx\n", "first-fit",
              util::to_string(first_fit.makespan).c_str(),
              util::to_string(first_fit.mean_turnaround()).c_str(), 1.0);
  std::printf("%-12s %-14s %-18s %7.2fx\n", "planner",
              util::to_string(planner.makespan).c_str(),
              util::to_string(planner.mean_turnaround()).c_str(), speedup);

  std::printf("\nsaturated mix: %zu seeds x 60 jobs, cost-model routing\n\n",
              seeds);
  std::printf("%-12s %s\n", "routing", "mean |predicted-actual| error");
  std::printf("%-12s %s\n", "quiet",
              util::to_string(
                  util::Seconds(quiet.mean_error_sum / seeds)).c_str());
  std::printf("%-12s %s\n", "aware",
              util::to_string(
                  util::Seconds(aware.mean_error_sum / seeds)).c_str());

  const bool placements_proven = planner.oracle_failures == 0 &&
                                 first_fit.oracle_failures == 0 &&
                                 aware.oracle_failures == 0 &&
                                 quiet.oracle_failures == 0;
  // The tentpole target: beat bench/renegotiation's elastic 1.59x win,
  // with the planner's routing promises strictly better kept than the
  // quiet baseline's and every placement oracle-proven.
  const bool ok = planner.makespan < first_fit.makespan &&
                  speedup > 1.59 &&
                  aware.mean_error_sum < quiet.mean_error_sum &&
                  placements_proven;
  std::printf("\nplanner beats first-fit (target > 1.59x), aware error < "
              "quiet baseline, all placements oracle-proven: %s\n",
              ok ? "PASS" : "FAIL");

  harness::BenchJson json("spectrum_alloc");
  json.note("verdict", ok ? "PASS" : "FAIL");
  json.metric("planner_makespan_s", planner.makespan.value());
  json.metric("first_fit_makespan_s", first_fit.makespan.value());
  json.metric("planner_speedup", speedup);
  json.metric("planner_mean_turnaround_s",
              planner.mean_turnaround().value());
  json.metric("first_fit_mean_turnaround_s",
              first_fit.mean_turnaround().value());
  json.metric("aware_mean_routing_error_s", aware.mean_error_sum / seeds);
  json.metric("quiet_mean_routing_error_s", quiet.mean_error_sum / seeds);
  json.write();
  return ok ? 0 : 1;
}
